package explore

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"visasim/internal/workload"
)

// RunReport is the machine-readable form of a screen-then-verify run —
// the shape `experiments explore -explore-json` and `visasimctl explore
// -json` both write. Everything except ElapsedSec is deterministic for a
// given (model, space, seed, samples, verify budget), which is what lets
// CI assert byte-parity between local and daemon-backed runs.
type RunReport struct {
	Model      int    // twin model version
	Budget     uint64 // verification budget (instructions)
	SpaceSize  int64
	Screened   int64
	ElapsedSec float64
	Frontier   []Point
	Verified   []Verified
}

// MarshalReport serialises a run report as indented JSON.
func MarshalReport(r *RunReport) ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// WriteFrontier renders a screened frontier as an aligned text table,
// sorted by area (cheapest design first). If verified is non-empty, the
// matching rows gain simulator columns and twin-vs-simulator errors.
func WriteFrontier(w io.Writer, pts []Point, verified []Verified) error {
	byIdx := make(map[int64]*Verified, len(verified))
	for i := range verified {
		byIdx[verified[i].Index] = &verified[i]
	}
	ordered := Select(pts, len(pts)) // area-ordered copy

	mixes := workload.Mixes()
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	header := "POINT\tMIX\tT\tSCHEME\tPOLICY\tIQ\tORG\tPROT\tFU\tDVM\tAREA\tIPC*\tIQAVF*"
	if len(byIdx) > 0 {
		header += "\tIPC\tIQAVF\tERR(IPC)\tERR(AVF)"
	}
	fmt.Fprintln(tw, header)
	for i := range ordered {
		p := &ordered[i]
		mix := "?"
		if p.In.Mix >= 0 && p.In.Mix < len(mixes) {
			mix = mixes[p.In.Mix].Name
		}
		dvm := "-"
		if p.In.DVMFrac > 0 {
			dvm = fmt.Sprintf("%.2f", p.In.DVMFrac)
		}
		fu := make([]string, len(p.In.FU))
		for c, n := range p.In.FU {
			fu[c] = fmt.Sprint(n)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%v\t%v\t%d\t%v\t%v\t%s\t%s\t%.0f\t%.3f\t%.4f",
			p.Index, mix, p.In.Threads, p.In.Scheme, p.In.Policy,
			p.In.IQSize, p.In.Org, p.In.Prot, strings.Join(fu, "/"), dvm,
			p.Pred.Area, p.Pred.IPC, p.Pred.IQAVF)
		if len(byIdx) > 0 {
			if v := byIdx[p.Index]; v != nil {
				fmt.Fprintf(tw, "\t%.3f\t%.4f\t%s\t%s",
					v.Obs.IPC, v.Obs.IQAVF,
					relErr(p.Pred.IPC, v.Obs.IPC), relErr(p.Pred.IQAVF, v.Obs.IQAVF))
			} else {
				fmt.Fprint(tw, "\t-\t-\t-\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func relErr(pred, obs float64) string {
	if obs == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(pred-obs)/obs)
}

// Summary is a one-paragraph account of a screening run for logs and CLI
// output.
func Summary(res *Result) string {
	rate := float64(res.Screened) / res.Elapsed.Seconds()
	return fmt.Sprintf("screened %d of %d design points in %v (%.0f configs/sec), frontier %d points",
		res.Screened, res.Size, res.Elapsed.Round(1_000_000), rate, len(res.Frontier))
}
