package explore

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"visasim/internal/rng"
	"visasim/internal/twin"
)

// Point is one screened design point: its index in the enumeration, the
// decoded input, and the twin's prediction.
type Point struct {
	Index int64
	In    twin.Input
	Pred  twin.Prediction
}

// Options controls a screening run.
type Options struct {
	// Workers is the screening parallelism (0 = GOMAXPROCS). The result
	// is identical for every worker count.
	Workers int
	// Samples > 0 screens that many seeded pseudo-random points instead
	// of the full enumeration. Sample i is Hash64(seed, i) mod Size —
	// a pure function of (Seed, i) — so the screened set is independent
	// of worker scheduling.
	Samples int64
	Seed    uint64
}

// Result is a completed screen: the Pareto frontier over (IPC ↑, IQ AVF ↓,
// area ↓) plus run accounting.
type Result struct {
	Size     int64 // design points the space addresses
	Screened int64 // points actually evaluated
	Frontier []Point
	Elapsed  time.Duration
}

// Screen evaluates the space through the twin and returns the Pareto
// frontier. Exhaustive when opt.Samples is 0, sampled otherwise; in both
// modes the frontier is an exact, deterministic function of (space, seed,
// sample count) — workers only change wall-clock time.
func Screen(m *twin.Model, e *Enum, opt Options) (*Result, error) {
	if e.Size() == 0 {
		return nil, fmt.Errorf("explore: empty space")
	}
	start := time.Now()
	n := e.Size()
	sampled := opt.Samples > 0
	if sampled {
		n = opt.Samples
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > n {
		workers = int(n)
	}

	// Each worker screens a contiguous index range into a private
	// frontier; the merge of per-worker frontiers is exactly the global
	// frontier, because a globally non-dominated point is non-dominated
	// in every subset that contains it.
	fronts := make([]frontier, workers)
	var wg sync.WaitGroup
	chunk := n / int64(workers)
	rem := n % int64(workers)
	lo := int64(0)
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if int64(w) < rem {
			hi++
		}
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			f := &fronts[w]
			var p Point
			for i := lo; i < hi; i++ {
				idx := i
				if sampled {
					idx = int64(rng.Hash64(opt.Seed, uint64(i)) % uint64(e.Size()))
				}
				p.Index = idx
				e.Decode(idx, &p.In)
				m.Evaluate(&p.In, &p.Pred)
				f.add(&p)
			}
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()

	var merged []Point
	for w := range fronts {
		merged = append(merged, fronts[w].pts...)
	}
	res := &Result{
		Size:     e.Size(),
		Screened: n,
		Frontier: paretoFront(merged),
		Elapsed:  time.Since(start),
	}
	return res, nil
}

// covers reports weak dominance: a is at least as good as b on every
// objective.
func covers(a, b *Point) bool {
	return a.Pred.IPC >= b.Pred.IPC && a.Pred.IQAVF <= b.Pred.IQAVF && a.Pred.Area <= b.Pred.Area
}

// beats reports whether a displaces b on the frontier: strict dominance,
// or an identical objective triple held by an earlier index (duplicate
// triples keep exactly one representative, the lowest-index one, so the
// frontier is worker-count invariant).
func beats(a, b *Point) bool {
	if !covers(a, b) {
		return false
	}
	if a.Pred.IPC > b.Pred.IPC || a.Pred.IQAVF < b.Pred.IQAVF || a.Pred.Area < b.Pred.Area {
		return true
	}
	return a.Index < b.Index
}

// frontier is an incrementally maintained Pareto set.
type frontier struct {
	pts []Point
}

func (f *frontier) add(p *Point) {
	for i := range f.pts {
		if beats(&f.pts[i], p) {
			return
		}
	}
	keep := f.pts[:0]
	for i := range f.pts {
		if !beats(p, &f.pts[i]) {
			keep = append(keep, f.pts[i])
		}
	}
	f.pts = append(keep, *p)
}

// paretoFront reduces a point set to its Pareto frontier, sorted by index.
// The result is independent of the input order.
func paretoFront(pts []Point) []Point {
	var f frontier
	for i := range pts {
		f.add(&pts[i])
	}
	sort.Slice(f.pts, func(i, j int) bool { return f.pts[i].Index < f.pts[j].Index })
	return f.pts
}

// Select thins a frontier to at most k representatives, spread evenly
// along the area axis (ties broken by IPC then index, so the choice is
// deterministic). Verification budgets are finite; the spread keeps the
// verified subset covering the whole trade-off curve rather than one
// corner.
func Select(pts []Point, k int) []Point {
	if k <= 0 || len(pts) <= k {
		out := make([]Point, len(pts))
		copy(out, pts)
		return out
	}
	byArea := make([]Point, len(pts))
	copy(byArea, pts)
	sort.Slice(byArea, func(i, j int) bool {
		a, b := &byArea[i], &byArea[j]
		if a.Pred.Area != b.Pred.Area {
			return a.Pred.Area < b.Pred.Area
		}
		if a.Pred.IPC != b.Pred.IPC {
			return a.Pred.IPC > b.Pred.IPC
		}
		return a.Index < b.Index
	})
	out := make([]Point, 0, k)
	if k == 1 {
		return append(out, byArea[0])
	}
	for i := 0; i < k; i++ {
		// Evenly spaced positions including both endpoints.
		pos := i * (len(byArea) - 1) / (k - 1)
		out = append(out, byArea[pos])
	}
	// Positions can collide on short inputs; dedupe by index.
	seen := map[int64]bool{}
	dedup := out[:0]
	for _, p := range out {
		if !seen[p.Index] {
			seen[p.Index] = true
			dedup = append(dedup, p)
		}
	}
	return dedup
}
