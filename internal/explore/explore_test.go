package explore

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/iqorg"
	"visasim/internal/pipeline"
	"visasim/internal/twin"
)

func testModel(t *testing.T) *twin.Model {
	t.Helper()
	m, err := twin.Default()
	if err != nil {
		t.Fatalf("loading embedded model: %v", err)
	}
	return m
}

// tinySpace is small enough to enumerate by hand in tests (a few hundred
// points) while still exercising every axis, including the DVM expansion.
func tinySpace() Space {
	return Space{
		Mixes:    []int{0, 4, 8},
		Threads:  []int{2, 4},
		Schemes:  []core.Scheme{core.SchemeBase, core.SchemeVISA, core.SchemeDVM},
		DVMFracs: []float64{0.3, 0.6},
		Policies: []pipeline.FetchPolicyKind{pipeline.PolicyICOUNT, pipeline.PolicyFLUSH},
		IQSizes:  []int{48, 96},
		FUs:      [][5]int{{8, 4, 4, 8, 4}, {4, 2, 2, 4, 2}},
	}
}

func TestCompileSizeAndDecodeBijection(t *testing.T) {
	m := testModel(t)
	e, err := tinySpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// 3 mixes × 2 threads × (2 + 2 DVM fracs) × 2 policies × 2 IQ × 2 FU.
	want := int64(3 * 2 * 4 * 2 * 2 * 2)
	if e.Size() != want {
		t.Fatalf("size %d, want %d", e.Size(), want)
	}
	seen := map[twin.Input]bool{}
	var in twin.Input
	for i := int64(0); i < e.Size(); i++ {
		e.Decode(i, &in)
		if err := m.Valid(&in); err != nil {
			t.Fatalf("index %d decodes to invalid input: %v", i, err)
		}
		if seen[in] {
			t.Fatalf("index %d decodes to a duplicate input %+v", i, in)
		}
		seen[in] = true
	}
}

func TestCompileRejectsBadAxes(t *testing.T) {
	m := testModel(t)
	cases := map[string]func(*Space){
		"no-mixes":     func(s *Space) { s.Mixes = nil },
		"bad-mix":      func(s *Space) { s.Mixes = []int{99} },
		"bad-threads":  func(s *Space) { s.Threads = []int{9} },
		"dvm-static":   func(s *Space) { s.Schemes = []core.Scheme{core.SchemeDVMStatic} },
		"dvm-no-fracs": func(s *Space) { s.DVMFracs = nil },
		"bad-frac":     func(s *Space) { s.DVMFracs = []float64{1.5} },
		"tiny-iq":      func(s *Space) { s.IQSizes = []int{2} },
		"fu-no-loadstore": func(s *Space) {
			s.FUs = [][5]int{{8, 4, 0, 8, 4}}
		},
	}
	for name, mod := range cases {
		s := tinySpace()
		mod(&s)
		if _, err := s.Compile(m); err == nil {
			t.Errorf("%s: compile accepted an invalid space", name)
		}
	}
}

// bruteFront recomputes the frontier definition directly from all points:
// keep p unless some q strictly dominates it or ties it with a lower index.
func bruteFront(pts []Point) []Point {
	var out []Point
	for i := range pts {
		kept := true
		for j := range pts {
			if i != j && beats(&pts[j], &pts[i]) {
				kept = false
				break
			}
		}
		if kept {
			out = append(out, pts[i])
		}
	}
	return out
}

func TestScreenMatchesBruteForce(t *testing.T) {
	m := testModel(t)
	e, err := tinySpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Screen(m, e, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Screened != e.Size() {
		t.Fatalf("screened %d of %d", res.Screened, e.Size())
	}

	all := make([]Point, e.Size())
	for i := int64(0); i < e.Size(); i++ {
		all[i].Index = i
		e.Decode(i, &all[i].In)
		m.Evaluate(&all[i].In, &all[i].Pred)
	}
	want := bruteFront(all)
	if !reflect.DeepEqual(res.Frontier, want) {
		t.Fatalf("frontier (%d points) differs from brute force (%d points)",
			len(res.Frontier), len(want))
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
}

// TestScreenWorkerInvariance pins the property CI's byte-parity check
// relies on: the frontier is identical for every worker count, exhaustive
// or sampled.
func TestScreenWorkerInvariance(t *testing.T) {
	m := testModel(t)
	e, err := tinySpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{},
		{Samples: 117, Seed: 42},
	} {
		opt.Workers = 1
		ref, err := Screen(m, e, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			opt.Workers = workers
			res, err := Screen(m, e, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Frontier, ref.Frontier) {
				t.Fatalf("samples=%d: frontier with %d workers differs from 1 worker",
					opt.Samples, workers)
			}
		}
	}
}

func TestScreenSampledDeterminismAndSeedSensitivity(t *testing.T) {
	m := testModel(t)
	e, err := tinySpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Screen(m, e, Options{Samples: 60, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Screen(m, e, Options{Samples: 60, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Frontier, b.Frontier) {
		t.Fatal("same seed produced different frontiers")
	}
	c, err := Screen(m, e, Options{Samples: 60, Seed: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Frontier, c.Frontier) {
		t.Fatal("different seeds produced identical sampled frontiers (sampler ignores the seed?)")
	}
}

func TestFrontierPointsAreMutuallyNonDominated(t *testing.T) {
	m := testModel(t)
	e, err := DefaultSpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Screen(m, e, Options{Samples: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Frontier
	for i := range f {
		for j := range f {
			if i != j && beats(&f[i], &f[j]) {
				t.Fatalf("frontier point %d dominates frontier point %d", f[i].Index, f[j].Index)
			}
		}
	}
}

func TestSelectSpreadsAndBounds(t *testing.T) {
	m := testModel(t)
	e, err := tinySpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Screen(m, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) < 3 {
		t.Skipf("frontier too small (%d) to exercise selection", len(res.Frontier))
	}
	sel := Select(res.Frontier, 3)
	if len(sel) > 3 {
		t.Fatalf("Select returned %d > 3 points", len(sel))
	}
	// Endpoints of the area range must be present.
	minA, maxA := res.Frontier[0].Pred.Area, res.Frontier[0].Pred.Area
	for _, p := range res.Frontier {
		if p.Pred.Area < minA {
			minA = p.Pred.Area
		}
		if p.Pred.Area > maxA {
			maxA = p.Pred.Area
		}
	}
	if sel[0].Pred.Area != minA || sel[len(sel)-1].Pred.Area != maxA {
		t.Fatalf("selection does not span the area range: got [%v, %v], frontier [%v, %v]",
			sel[0].Pred.Area, sel[len(sel)-1].Pred.Area, minA, maxA)
	}
	one := Select(res.Frontier, 1)
	if len(one) != 1 {
		t.Fatalf("Select(1) returned %d points", len(one))
	}
}

// TestVerifyThroughRunnerSeam checks the frontier verifies through the
// same Runner seam the experiment harness uses, and that the twin's
// predictions for verified points track the live simulator.
func TestVerifyThroughRunnerSeam(t *testing.T) {
	if testing.Short() {
		t.Skip("live simulator verification skipped in -short mode")
	}
	m := testModel(t)
	e, err := tinySpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Screen(m, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sel := Select(res.Frontier, 4)

	var runnerCalls int
	runner := func(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
		runnerCalls++
		return harness.Run(cells, opt)
	}
	verified, err := Verify(m, sel, runner, 0)
	if err != nil {
		t.Fatal(err)
	}
	if runnerCalls != 1 {
		t.Fatalf("runner called %d times, want 1", runnerCalls)
	}
	if len(verified) != len(sel) {
		t.Fatalf("verified %d of %d points", len(verified), len(sel))
	}
	for _, v := range verified {
		if v.Obs.IPC <= 0 {
			t.Errorf("point %d: simulator reported non-positive IPC %v", v.Index, v.Obs.IPC)
		}
		if rel := (v.Pred.IPC - v.Obs.IPC) / v.Obs.IPC; rel > 0.5 || rel < -0.5 {
			t.Errorf("point %d: twin IPC %.3f vs simulator %.3f (%.0f%% off)",
				v.Index, v.Pred.IPC, v.Obs.IPC, 100*rel)
		}
	}

	var buf bytes.Buffer
	if err := WriteFrontier(&buf, sel, verified); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"POINT", "SCHEME", "AREA", "IPC*", "ERR(IPC)"} {
		if !strings.Contains(out, col) {
			t.Errorf("frontier table missing column %s:\n%s", col, out)
		}
	}
}

func TestWriteFrontierWithoutVerification(t *testing.T) {
	m := testModel(t)
	e, err := tinySpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Screen(m, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrontier(&buf, Select(res.Frontier, 5), nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ERR(IPC)") {
		t.Fatal("unverified table should not contain simulator columns")
	}
	if !strings.Contains(Summary(res), "frontier") {
		t.Fatalf("summary missing frontier count: %s", Summary(res))
	}
}

// TestCompileIQAxes covers the organization/protection axes: empty axes
// compile to the default singleton without changing the space's size or
// bijection, populated axes multiply the size, and every decoded point
// carries a protection-priced area.
func TestCompileIQAxes(t *testing.T) {
	m := testModel(t)
	plain, err := tinySpace().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	var in twin.Input
	plain.Decode(0, &in)
	if in.Org != iqorg.UnifiedAGE || in.Prot != iqorg.None {
		t.Fatalf("empty axes decoded to %v/%v, want defaults", in.Org, in.Prot)
	}

	s := tinySpace()
	s.Orgs = iqorg.Kinds()
	s.Prots = []iqorg.Protection{iqorg.None, iqorg.ECC}
	e, err := s.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if want := plain.Size() * int64(len(s.Orgs)) * 2; e.Size() != want {
		t.Fatalf("size %d, want %d", e.Size(), want)
	}
	seen := map[[2]int]bool{}
	sawECCPrice := false
	var p twin.Prediction
	for i := int64(0); i < e.Size(); i++ {
		e.Decode(i, &in)
		if err := m.Valid(&in); err != nil {
			t.Fatalf("index %d decodes to invalid input: %v", i, err)
		}
		seen[[2]int{int(in.Org), int(in.Prot)}] = true
		if in.Prot == iqorg.ECC {
			m.Evaluate(&in, &p)
			base := twin.AreaProxy(in.IQSize, in.Threads, &in.FU)
			if p.Area != base+iqorg.ECC.AreaCost(in.IQSize) {
				t.Fatalf("index %d: ECC area %v not priced over proxy %v", i, p.Area, base)
			}
			sawECCPrice = true
		}
	}
	if len(seen) != len(s.Orgs)*2 {
		t.Fatalf("decoded %d org/prot pairs, want %d", len(seen), len(s.Orgs)*2)
	}
	if !sawECCPrice {
		t.Fatal("no ECC point was decoded")
	}
}
