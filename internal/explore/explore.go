// Package explore searches the SMT design space for issue-queue
// reliability/performance trade-offs using the screen-then-verify workflow
// DESIGN.md §11 describes: enumerate or sample millions of configurations
// across the explorer axes (issue-queue size, DVM target depth, fetch
// policy, function-unit mix, scheme, thread count), screen each one through
// the analytical twin in well under a microsecond, keep only the Pareto
// frontier over (IPC ↑, IQ AVF ↓, area ↓), and hand that frontier to the
// full simulator — through the same Runner seam the experiment harness,
// visasimd and the dispatch cluster share — for verification.
//
// Everything here is deterministic: the same Space, seed and sample count
// produce the same frontier regardless of worker count, so frontier
// artifacts are byte-reproducible and CI can assert parity between local
// and daemon-backed runs.
package explore

import (
	"fmt"
	"strings"

	"visasim/internal/core"
	"visasim/internal/iqorg"
	"visasim/internal/pipeline"
	"visasim/internal/twin"
)

// Space declares the axes of a design-space sweep. The cross product of
// the axes — with the DVM-fraction axis applying only to the DVM scheme —
// is the enumerable index space; Compile freezes it into an Enum for
// screening.
type Space struct {
	// Mixes indexes workload.Mixes(); Threads picks co-schedule widths.
	Mixes   []int
	Threads []int

	// Schemes lists the protection schemes to explore. The DVM scheme
	// expands into one design point per DVMFrac; every other scheme
	// contributes a single point per combination. SchemeDVMStatic is
	// outside the twin's scope and is rejected by Compile.
	Schemes  []core.Scheme
	DVMFracs []float64

	Policies []pipeline.FetchPolicyKind
	IQSizes  []int
	FUs      [][5]int

	// Orgs and Prots are the issue-queue organization and protection
	// axes. Leaving either empty means "the default only" (unified AGE,
	// unprotected) — Compile fills the singleton — so spaces written
	// before these axes existed keep their meaning and their size.
	Orgs  []iqorg.Kind
	Prots []iqorg.Protection
}

// FUGrid builds a function-unit axis as the cross product of per-class
// count choices, ordered to match isa.FUClass.
func FUGrid(intALUs, intMulDivs, loadStores, fpALUs, fpMulDivs []int) [][5]int {
	var out [][5]int
	for _, a := range intALUs {
		for _, m := range intMulDivs {
			for _, l := range loadStores {
				for _, fa := range fpALUs {
					for _, fm := range fpMulDivs {
						out = append(out, [5]int{a, m, l, fa, fm})
					}
				}
			}
		}
	}
	return out
}

// DefaultSpace is the production sweep: every Table 3 mix and thread
// count, every fetch policy, all twin-modelled schemes with seven DVM
// target depths, eleven issue-queue sizes, every issue-queue organization
// and protection mode, and a 648-point function-unit grid — about 170
// million design points.
func DefaultSpace() Space {
	return Space{
		Mixes:    seqInts(0, len(twin.MixIndices())-1),
		Threads:  []int{1, 2, 3, 4},
		Schemes:  []core.Scheme{core.SchemeBase, core.SchemeVISA, core.SchemeVISAOpt1, core.SchemeVISAOpt2, core.SchemeDVM},
		DVMFracs: []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		Policies: pipeline.AllPolicies(),
		IQSizes:  []int{16, 24, 32, 48, 64, 80, 96, 128, 160, 192, 256},
		Orgs:     iqorg.Kinds(),
		Prots:    iqorg.Protections(),
		FUs: FUGrid(
			[]int{2, 4, 6, 8, 12, 16},
			[]int{1, 2, 4},
			[]int{2, 4, 6, 8},
			[]int{2, 4, 8},
			[]int{1, 2, 4},
		),
	}
}

// ParseOrgs resolves a comma-separated organization list ("" → nil, which
// Compile treats as the default singleton). Shared by the explore CLIs.
func ParseOrgs(s string) ([]iqorg.Kind, error) {
	if s == "" {
		return nil, nil
	}
	var out []iqorg.Kind
	for _, name := range strings.Split(s, ",") {
		k, err := iqorg.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// ParseProts resolves a comma-separated protection-mode list ("" → nil).
func ParseProts(s string) ([]iqorg.Protection, error) {
	if s == "" {
		return nil, nil
	}
	var out []iqorg.Protection
	for _, name := range strings.Split(s, ",") {
		p, err := iqorg.ParseProtection(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func seqInts(from, to int) []int {
	out := make([]int, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, i)
	}
	return out
}

// schemeVariant is one expanded entry of the scheme axis: a scheme plus
// its DVM fraction (0 for non-DVM schemes).
type schemeVariant struct {
	scheme core.Scheme
	frac   float64
}

// Enum is a compiled Space: a bijection between [0, Size()) and design
// points, validated against a model so Decode+Evaluate never fail inside
// the screening loop.
type Enum struct {
	space    Space
	variants []schemeVariant
	size     int64
}

// Compile validates the space against m and freezes it for enumeration.
func (s Space) Compile(m *twin.Model) (*Enum, error) {
	check := func(cond bool, format string, args ...any) error {
		if cond {
			return nil
		}
		return fmt.Errorf("explore: "+format, args...)
	}
	axes := []struct {
		name string
		n    int
	}{
		{"mixes", len(s.Mixes)}, {"threads", len(s.Threads)},
		{"schemes", len(s.Schemes)}, {"policies", len(s.Policies)},
		{"iq sizes", len(s.IQSizes)}, {"function-unit mixes", len(s.FUs)},
	}
	for _, a := range axes {
		if err := check(a.n > 0, "space has no %s", a.name); err != nil {
			return nil, err
		}
	}

	// Empty organization/protection axes mean "default only": older space
	// definitions keep their size and their index bijection over the
	// remaining axes (the new digits then have radix 1).
	if len(s.Orgs) == 0 {
		s.Orgs = []iqorg.Kind{iqorg.UnifiedAGE}
	}
	if len(s.Prots) == 0 {
		s.Prots = []iqorg.Protection{iqorg.None}
	}

	e := &Enum{space: s}
	for _, sch := range s.Schemes {
		if sch == core.SchemeDVM {
			if err := check(len(s.DVMFracs) > 0, "DVM scheme in space but no DVM fractions"); err != nil {
				return nil, err
			}
			for _, f := range s.DVMFracs {
				e.variants = append(e.variants, schemeVariant{core.SchemeDVM, f})
			}
			continue
		}
		e.variants = append(e.variants, schemeVariant{sch, 0})
	}

	// Validate every axis value once, so the screening loop can trust
	// Decode unconditionally. One probe Input per axis value reuses the
	// twin's own validation.
	probe := func(mod func(*twin.Input)) error {
		in := twin.Input{
			Mix: s.Mixes[0], Threads: s.Threads[0],
			Scheme: e.variants[0].scheme, DVMFrac: e.variants[0].frac,
			Policy: s.Policies[0], IQSize: s.IQSizes[0], FU: s.FUs[0],
			Org: s.Orgs[0], Prot: s.Prots[0],
		}
		mod(&in)
		return m.Valid(&in)
	}
	for _, mix := range s.Mixes {
		if err := probe(func(in *twin.Input) { in.Mix = mix }); err != nil {
			return nil, err
		}
	}
	for _, t := range s.Threads {
		if err := probe(func(in *twin.Input) { in.Threads = t }); err != nil {
			return nil, err
		}
	}
	for _, v := range e.variants {
		v := v
		if err := probe(func(in *twin.Input) { in.Scheme = v.scheme; in.DVMFrac = v.frac }); err != nil {
			return nil, err
		}
	}
	for _, p := range s.Policies {
		if err := probe(func(in *twin.Input) { in.Policy = p }); err != nil {
			return nil, err
		}
	}
	for _, q := range s.IQSizes {
		if err := probe(func(in *twin.Input) { in.IQSize = q }); err != nil {
			return nil, err
		}
	}
	for _, fu := range s.FUs {
		fu := fu
		if err := probe(func(in *twin.Input) { in.FU = fu }); err != nil {
			return nil, err
		}
	}
	for _, org := range s.Orgs {
		org := org
		if err := probe(func(in *twin.Input) { in.Org = org }); err != nil {
			return nil, err
		}
	}
	for _, prot := range s.Prots {
		prot := prot
		if err := probe(func(in *twin.Input) { in.Prot = prot }); err != nil {
			return nil, err
		}
	}

	e.size = 1
	for _, n := range []int{len(s.Mixes), len(s.Threads), len(e.variants), len(s.Policies), len(s.IQSizes), len(s.FUs), len(s.Orgs), len(s.Prots)} {
		e.size *= int64(n)
		if e.size < 0 || e.size > 1<<50 {
			return nil, fmt.Errorf("explore: space size overflows the index range")
		}
	}
	return e, nil
}

// Size is the number of design points the enum addresses.
func (e *Enum) Size() int64 { return e.size }

// Space returns the space the enum was compiled from.
func (e *Enum) Space() Space { return e.space }

// Decode maps an index in [0, Size()) to its design point. It is the
// screening hot path: zero allocation, mixed-radix digit extraction in
// axis order (protection fastest, then organization, FU, …, mix slowest).
func (e *Enum) Decode(i int64, in *twin.Input) {
	s := &e.space
	d := i % int64(len(s.Prots))
	in.Prot = s.Prots[d]
	i /= int64(len(s.Prots))
	d = i % int64(len(s.Orgs))
	in.Org = s.Orgs[d]
	i /= int64(len(s.Orgs))
	d = i % int64(len(s.FUs))
	in.FU = s.FUs[d]
	i /= int64(len(s.FUs))
	d = i % int64(len(s.IQSizes))
	in.IQSize = s.IQSizes[d]
	i /= int64(len(s.IQSizes))
	d = i % int64(len(s.Policies))
	in.Policy = s.Policies[d]
	i /= int64(len(s.Policies))
	d = i % int64(len(e.variants))
	in.Scheme = e.variants[d].scheme
	in.DVMFrac = e.variants[d].frac
	i /= int64(len(e.variants))
	d = i % int64(len(s.Threads))
	in.Threads = s.Threads[d]
	i /= int64(len(s.Threads))
	in.Mix = s.Mixes[i]
}
