package explore

import (
	"fmt"
	"sort"

	"visasim/internal/harness"
	"visasim/internal/twin"
)

// Verified is a frontier point together with the full simulator's answer
// for it.
type Verified struct {
	Point
	Key string
	Obs twin.Observed
}

// VerifyKey is the stable harness key a frontier point simulates under:
// "explore/<index>". The index is a bijection with the design point, so
// the key is content-stable across runs of the same space.
func VerifyKey(p *Point) string {
	return fmt.Sprintf("explore/%d", p.Index)
}

// Cells materialises the harness cells a set of frontier points verifies
// as, using the model's calibration budget so the twin and the simulator
// are compared like for like.
func Cells(m *twin.Model, pts []Point) ([]harness.Cell, error) {
	cells := make([]harness.Cell, 0, len(pts))
	for i := range pts {
		cfg, err := m.ConfigFor(&pts[i].In)
		if err != nil {
			return nil, fmt.Errorf("explore: point %d: %w", pts[i].Index, err)
		}
		cells = append(cells, harness.Cell{Key: VerifyKey(&pts[i]), Cfg: cfg})
	}
	if err := harness.ValidateKeys(cells); err != nil {
		return nil, err
	}
	return cells, nil
}

// Verify runs the given frontier points through the full simulator via
// runner — the same seam experiments, visasimd and the dispatch cluster
// share; nil means the local harness — and returns them with observations
// attached, sorted by index.
func Verify(m *twin.Model, pts []Point, runner twin.Runner, workers int) ([]Verified, error) {
	cells, err := Cells(m, pts)
	if err != nil {
		return nil, err
	}
	if runner == nil {
		runner = func(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
			return harness.Run(cells, opt)
		}
	}
	results, err := runner(cells, harness.Options{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("explore: verification sweep: %w", err)
	}
	out := make([]Verified, 0, len(pts))
	for i := range pts {
		key := VerifyKey(&pts[i])
		res, ok := results[key]
		if !ok {
			return nil, fmt.Errorf("explore: verification returned no result for %s", key)
		}
		out = append(out, Verified{Point: pts[i], Key: key, Obs: twin.ObservedFrom(res)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}
