// Package replay re-runs recorded simulations from their decision traces
// (DESIGN.md §10). A trace carries the canonical core.Config it was recorded
// from, so a replayer needs nothing but the trace file: an untouched replay
// reconstructs the cell and reproduces both the results and the trace
// byte-identically (the simulator is deterministic and recording is
// observation only), and a counterfactual replay overlays a forced-action
// schedule that flips up to K recorded decisions and measures the AVF/IPC
// consequences.
package replay

import (
	"encoding/json"
	"fmt"

	"visasim/internal/core"
	"visasim/internal/decision"
)

// Record runs cfg with decision tracing at the given level (clamped to ≥ 1)
// and returns the result alongside the recorded trace.
func Record(cfg core.Config, level int, cellKey string) (*core.Result, *decision.Trace, error) {
	if level < 1 {
		level = 1
	}
	return core.RunTraced(cfg, core.RunOptions{TraceLevel: level, CellKey: cellKey})
}

// ConfigFromTrace rebuilds the simulation configuration recorded in the
// trace. The embedded JSON is the canonical form, so the rebuilt Config
// hashes to the trace's ConfigHash; a mismatch means the trace was recorded
// by an incompatible build and is rejected.
func ConfigFromTrace(tr *decision.Trace) (core.Config, error) {
	var cfg core.Config
	if len(tr.ConfigJSON) == 0 {
		return cfg, fmt.Errorf("replay: trace carries no configuration")
	}
	if err := json.Unmarshal(tr.ConfigJSON, &cfg); err != nil {
		return cfg, fmt.Errorf("replay: decoding trace config: %w", err)
	}
	if tr.ConfigHash != "" {
		h, err := cfg.Hash()
		if err != nil {
			return cfg, fmt.Errorf("replay: hashing trace config: %w", err)
		}
		if h != tr.ConfigHash {
			return cfg, fmt.Errorf("replay: trace config hash %s does not match recorded %s (incompatible build?)",
				h, tr.ConfigHash)
		}
	}
	return cfg, nil
}

// Replay re-runs the cell recorded in tr under the given forced schedule,
// re-recording at the trace's own level. An empty schedule is the untouched
// replay: its result and trace reproduce the originals byte-identically,
// which the determinism suite asserts.
func Replay(tr *decision.Trace, forced decision.Schedule) (*core.Result, *decision.Trace, error) {
	cfg, err := ConfigFromTrace(tr)
	if err != nil {
		return nil, nil, err
	}
	level := tr.Level
	if level < 1 {
		level = 1
	}
	return core.RunTraced(cfg, core.RunOptions{
		TraceLevel: level,
		Forced:     forced,
		CellKey:    tr.CellKey,
	})
}

// CounterfactualSchedule builds the forced schedule that flips the first k
// measured-region decisions of tr to their canonical alternatives
// (decision.Alternative). Each force holds until the next flipped decision's
// cycle — the last one holds forever — so the alternative stays in effect
// long enough to be measurable instead of being re-decided away on the next
// cycle. Sample events carry no alternative and are skipped. The returned
// schedule may hold fewer than k forces (or be empty) when the trace has
// fewer flippable decisions.
func CounterfactualSchedule(tr *decision.Trace, k int) decision.Schedule {
	var sched decision.Schedule
	for _, ev := range tr.EventsFrom(tr.MeasureStart) {
		if len(sched) == k {
			break
		}
		f, ok := decision.Alternative(ev, decision.Forever)
		if !ok {
			continue
		}
		if n := len(sched); n > 0 {
			sched[n-1].Until = f.From
		}
		sched = append(sched, f)
	}
	sched.Normalize()
	return sched
}

// Diff is the per-metric delta of a counterfactual replay (alternative minus
// baseline).
type Diff struct {
	DCycles         int64   `json:"d_cycles"`
	DCommits        int64   `json:"d_commits"`
	DThroughputIPC  float64 `json:"d_throughput_ipc"`
	DIQAVF          float64 `json:"d_iq_avf"`
	DROBAVF         float64 `json:"d_rob_avf"`
	DMaxIQAVF       float64 `json:"d_max_iq_avf"`
	DPolicySwitches int64   `json:"d_policy_switches"`
	DDVMTriggers    int64   `json:"d_dvm_triggers"`
}

// Zero reports whether every delta is exactly zero (the signature of an
// untouched replay — or a counterfactual that changed nothing).
func (d Diff) Zero() bool { return d == Diff{} }

// SummaryDiff computes alt − base per metric.
func SummaryDiff(base, alt decision.Summary) Diff {
	return Diff{
		DCycles:         int64(alt.Cycles) - int64(base.Cycles),
		DCommits:        int64(alt.Commits) - int64(base.Commits),
		DThroughputIPC:  alt.ThroughputIPC - base.ThroughputIPC,
		DIQAVF:          alt.IQAVF - base.IQAVF,
		DROBAVF:         alt.ROBAVF - base.ROBAVF,
		DMaxIQAVF:       alt.MaxIQAVF - base.MaxIQAVF,
		DPolicySwitches: int64(alt.PolicySwitches) - int64(base.PolicySwitches),
		DDVMTriggers:    int64(alt.DVMTriggers) - int64(base.DVMTriggers),
	}
}

// Outcome is one counterfactual replay's report.
type Outcome struct {
	// Forced is the schedule the alternative ran under.
	Forced decision.Schedule `json:"forced"`
	// Base and Alt are the recorded and counterfactual run summaries.
	Base decision.Summary `json:"base"`
	Alt  decision.Summary `json:"alt"`
	// Diff is Alt − Base.
	Diff Diff `json:"diff"`
	// Trace is the alternative run's trace (its Forced-marked events show
	// where the overrides took hold).
	Trace *decision.Trace `json:"-"`
}

// Counterfactual replays tr with its first k measured decisions flipped and
// reports the consequences. It returns an error when the trace has no
// flippable decision — there is nothing to be counterfactual about.
func Counterfactual(tr *decision.Trace, k int) (*Outcome, error) {
	if k < 1 {
		k = 1
	}
	sched := CounterfactualSchedule(tr, k)
	if len(sched) == 0 {
		return nil, fmt.Errorf("replay: trace records no flippable decisions")
	}
	_, alt, err := Replay(tr, sched)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Forced: sched,
		Base:   tr.Summary,
		Alt:    alt.Summary,
		Diff:   SummaryDiff(tr.Summary, alt.Summary),
		Trace:  alt,
	}, nil
}
