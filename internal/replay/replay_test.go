package replay

import (
	"bytes"
	"encoding/json"
	"testing"

	"visasim/internal/core"
	"visasim/internal/decision"
	"visasim/internal/pipeline"
)

// Budget mirrors the root determinism suite: large enough for the control
// loops to act, small enough to keep the suite fast.
const budget = 12_000

func dvmConfig() core.Config {
	return core.Config{
		Benchmarks:      []string{"mcf", "equake", "vpr", "swim"},
		Scheme:          core.SchemeDVM,
		Policy:          pipeline.PolicyICOUNT,
		DVMTarget:       0.04,
		MaxInstructions: budget,
	}
}

func opt2Config() core.Config {
	return core.Config{
		Benchmarks:      []string{"mcf", "equake", "vpr", "swim"},
		Scheme:          core.SchemeVISAOpt2,
		Policy:          pipeline.PolicyFLUSH,
		MaxInstructions: budget,
	}
}

func encodeTrace(t *testing.T, tr *decision.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func marshalResult(t *testing.T, r *core.Result) []byte {
	t.Helper()
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestUntouchedReplayByteIdentical is the core replay guarantee: replaying a
// recorded trace with an empty forced schedule reproduces the original
// result and the original trace byte for byte.
func TestUntouchedReplayByteIdentical(t *testing.T) {
	for name, cfg := range map[string]core.Config{"dvm": dvmConfig(), "opt2": opt2Config()} {
		t.Run(name, func(t *testing.T) {
			baseRes, baseTr, err := Record(cfg, 1, "replay-test/"+name)
			if err != nil {
				t.Fatal(err)
			}
			if len(baseTr.Events) == 0 {
				t.Fatal("recorded trace is empty; cell exercises no decisions")
			}
			replayRes, replayTr, err := Replay(baseTr, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(marshalResult(t, baseRes), marshalResult(t, replayRes)) {
				t.Error("untouched replay changed the result")
			}
			if !bytes.Equal(encodeTrace(t, baseTr), encodeTrace(t, replayTr)) {
				t.Error("untouched replay changed the trace encoding")
			}
		})
	}
}

// TestCounterfactualProducesMeasurableDiff pins the acceptance criterion: a
// K=1 forced-alternative replay of a control-loop cell must move AVF/IPC.
func TestCounterfactualProducesMeasurableDiff(t *testing.T) {
	_, tr, err := Record(dvmConfig(), 1, "replay-test/dvm")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Counterfactual(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Forced) != 1 {
		t.Fatalf("K=1 schedule has %d forces", len(out.Forced))
	}
	if out.Diff.Zero() {
		t.Fatalf("counterfactual produced no measurable difference: %+v", out.Diff)
	}
	forced := 0
	for _, ev := range out.Trace.Events {
		if ev.Forced {
			forced++
		}
	}
	if forced == 0 {
		t.Error("alternative trace records no Forced events")
	}
}

// TestCounterfactualScheduleWindows checks the schedule construction: at
// most k forces, chained windows, last one open-ended.
func TestCounterfactualScheduleWindows(t *testing.T) {
	_, tr, err := Record(dvmConfig(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := CounterfactualSchedule(tr, 3)
	if len(sched) == 0 || len(sched) > 3 {
		t.Fatalf("schedule has %d forces, want 1..3", len(sched))
	}
	for i := 0; i < len(sched)-1; i++ {
		if sched[i].Until != sched[i+1].From {
			t.Errorf("force %d window [%d,%d) not chained to next start %d",
				i, sched[i].From, sched[i].Until, sched[i+1].From)
		}
	}
	if last := sched[len(sched)-1]; last.Until != decision.Forever {
		t.Errorf("last force ends at %d, want Forever", last.Until)
	}
}

// TestConfigFromTraceRejectsHashMismatch guards against replaying a trace
// recorded by an incompatible build.
func TestConfigFromTraceRejectsHashMismatch(t *testing.T) {
	_, tr, err := Record(opt2Config(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigFromTrace(tr); err != nil {
		t.Fatalf("genuine trace rejected: %v", err)
	}
	tr.ConfigHash = "0000000000000000000000000000000000000000000000000000000000000000"
	if _, err := ConfigFromTrace(tr); err == nil {
		t.Fatal("tampered config hash accepted")
	}
	tr.ConfigHash = ""
	tr.ConfigJSON = nil
	if _, err := ConfigFromTrace(tr); err == nil {
		t.Fatal("trace without configuration accepted")
	}
}
