package core

import (
	"testing"

	"visasim/internal/dvm"
	"visasim/internal/pipeline"
)

// TestSchemePolicyMatrix exercises every (scheme × fetch policy) cell on a
// mixed workload: no panics, budget reached, sane outputs. This is the
// integration sweep the experiment harness depends on.
func TestSchemePolicyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	workload := []string{"gcc", "mcf", "vpr", "perlbmk"}
	const budget = 10_000
	for _, scheme := range []Scheme{SchemeBase, SchemeVISA, SchemeVISAOpt1, SchemeVISAOpt2, SchemeDVM} {
		for _, pol := range pipeline.AllPolicies() {
			cfg := Config{
				Benchmarks:      workload,
				Scheme:          scheme,
				Policy:          pol,
				MaxInstructions: budget,
				Warmup:          -1,
			}
			if scheme == SchemeDVM {
				cfg.DVMTarget = 0.2
			}
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, pol, err)
			}
			if r.TotalCommits() < budget {
				t.Errorf("%v/%v: committed %d of %d", scheme, pol, r.TotalCommits(), budget)
			}
			if r.IQAVF < 0 || r.IQAVF > 1 || r.ThroughputIPC <= 0 {
				t.Errorf("%v/%v: implausible outputs AVF=%v IPC=%v", scheme, pol, r.IQAVF, r.ThroughputIPC)
			}
		}
	}
}

// TestWorkloadWidthRange runs 1..8 threads of the same benchmark: SMT
// throughput must not collapse as contexts are added, and the IQ AVF must
// grow with utilisation.
func TestWorkloadWidthRange(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	var prevIPC float64
	var avf1, avf8 float64
	for n := 1; n <= 8; n *= 2 {
		benchmarks := make([]string, n)
		for i := range benchmarks {
			benchmarks[i] = "gcc"
		}
		r, err := Run(Config{
			Benchmarks:      benchmarks,
			Scheme:          SchemeBase,
			Policy:          pipeline.PolicyICOUNT,
			MaxInstructions: 20_000,
			Warmup:          -1,
		})
		if err != nil {
			t.Fatalf("%d threads: %v", n, err)
		}
		t.Logf("%d threads: IPC %.2f IQAVF %.3f", n, r.ThroughputIPC, r.IQAVF)
		// Co-scheduling identical threads contends for the same cache
		// sets, so throughput can dip past 4 contexts; it must still
		// beat the single-thread machine.
		if n > 1 && r.ThroughputIPC < prevIPC*0.55 {
			t.Errorf("%d threads: IPC %.2f collapsed from %.2f", n, r.ThroughputIPC, prevIPC)
		}
		prevIPC = r.ThroughputIPC
		if n == 1 {
			avf1 = r.IQAVF
			prevIPC = r.ThroughputIPC
		}
		if n == 8 {
			avf8 = r.IQAVF
		}
	}
	if avf8 <= avf1 {
		t.Errorf("8-thread IQ AVF %.3f not above 1-thread %.3f (TLP should raise exposure)", avf8, avf1)
	}
}

// TestROBDVMStructure: the DVM controller retargeted at the ROB must
// reduce ROB-AVF emergencies relative to the baseline.
func TestROBDVMStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	workload := []string{"mcf", "equake", "vpr", "swim"}
	base, err := Run(Config{
		Benchmarks:      workload,
		Scheme:          SchemeBase,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := 0.5 * base.MaxROBAVF
	ext, err := Run(Config{
		Benchmarks:      workload,
		Scheme:          SchemeDVM,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 60_000,
		DVMTarget:       target,
		DVMStructure:    dvm.StructROB,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ROB PVE: base %.2f -> dvm %.2f (target %.4f)",
		base.PVEROB(target), ext.PVEROB(target), target)
	if base.PVEROB(target) > 0.3 && ext.PVEROB(target) >= base.PVEROB(target)*0.5 {
		t.Fatalf("ROB-DVM did not manage ROB AVF: %.2f vs %.2f",
			ext.PVEROB(target), base.PVEROB(target))
	}
	if ext.ROBAVFTagged <= 0 || ext.ROBAVF <= 0 {
		t.Fatal("ROB AVF accounting missing")
	}
}

// TestOracleTagsFlag: with OracleTags the tagged AVF estimate equals the
// ground-truth AVF (tags become per-instance perfect).
func TestOracleTagsFlag(t *testing.T) {
	cfg := Config{
		Benchmarks:      []string{"gcc", "mcf"},
		Scheme:          SchemeVISA,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 10_000,
		Warmup:          -1,
		OracleTags:      true,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.IQAVFTagged != r.IQAVF {
		t.Fatalf("oracle tags: tagged AVF %.4f != ground truth %.4f", r.IQAVFTagged, r.IQAVF)
	}
	cfg.OracleTags = false
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.IQAVFTagged == r2.IQAVF {
		t.Fatal("profiled tags should not be per-instance perfect")
	}
}
