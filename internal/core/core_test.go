package core

import (
	"testing"

	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

func quickCfg(scheme Scheme) Config {
	return Config{
		Benchmarks:      []string{"bzip2", "eon", "gcc", "perlbmk"},
		Scheme:          scheme,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 15_000,
		Warmup:          -1,
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Benchmarks: []string{"gcc"}}
	out, err := c.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxInstructions != DefaultInstructions {
		t.Fatal("budget default missing")
	}
	if out.Warmup != int64(DefaultInstructions/4) {
		t.Fatalf("warmup default %d", out.Warmup)
	}
	if out.Machine == nil || out.Machine.IQSize != 96 {
		t.Fatal("machine default missing")
	}
}

func TestConfigErrors(t *testing.T) {
	cases := []Config{
		{},                              // no benchmarks
		{Benchmarks: make([]string, 9)}, // too many threads
		{Benchmarks: []string{"gcc"}, Scheme: SchemeDVM}, // DVM without target
	}
	for i, c := range cases {
		if _, err := Run(c); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Run(Config{Benchmarks: []string{"nonesuch"}, MaxInstructions: 1000}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickCfg(SchemeVISAOpt2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(SchemeVISAOpt2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IQAVF != b.IQAVF || a.ThroughputIPC != b.ThroughputIPC {
		t.Fatal("core runs are not reproducible")
	}
}

func TestAllSchemesRun(t *testing.T) {
	var maxAVF float64
	for _, s := range []Scheme{SchemeBase, SchemeVISA, SchemeVISAOpt1, SchemeVISAOpt2} {
		r, err := Run(quickCfg(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.TotalCommits() < 15_000 {
			t.Errorf("%v under budget", s)
		}
		if r.MaxIQAVF > maxAVF {
			maxAVF = r.MaxIQAVF
		}
	}
	for _, s := range []Scheme{SchemeDVM, SchemeDVMStatic} {
		c := quickCfg(s)
		c.DVMTarget = 0.5 * maxAVF
		c.DVMStaticRatio = 1.5
		r, err := Run(c)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.TotalCommits() < 15_000 {
			t.Errorf("%v under budget", s)
		}
		if s == SchemeDVM && r.DVMMeanRatio == 0 {
			t.Error("dynamic DVM did not report a mean ratio")
		}
	}
}

func TestSchemeNames(t *testing.T) {
	want := map[Scheme]string{
		SchemeBase: "base", SchemeVISA: "visa", SchemeVISAOpt1: "visa+opt1",
		SchemeVISAOpt2: "visa+opt2", SchemeDVMStatic: "dvm-static", SchemeDVM: "dvm",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d renders %q, want %q", s, s.String(), n)
		}
	}
}

func TestProfileCacheReuse(t *testing.T) {
	b := workload.MustGet("twolf")
	p1, err := ProfileFor(b, 5000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileFor(b, 5000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cache returned distinct profiles for the same key")
	}
	p3, err := ProfileFor(b, 6000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p3 {
		t.Fatal("different budgets shared a profile")
	}
}

func TestRunMix(t *testing.T) {
	r, err := RunMix(workload.Mixes()[0], SchemeBase, pipeline.PolicyICOUNT, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 4 {
		t.Fatal("mix benchmarks not echoed")
	}
}

func TestCombinedTagAccuracyBounds(t *testing.T) {
	r, err := Run(quickCfg(SchemeBase))
	if err != nil {
		t.Fatal(err)
	}
	c := r.CombinedTagAccuracy()
	if c <= 0 || c > 1 {
		t.Fatalf("combined accuracy %v", c)
	}
	if c > r.CommittedTagAccuracy {
		t.Fatalf("combined %v above committed %v (squashed can only hurt)", c, r.CommittedTagAccuracy)
	}
}
