package core

import (
	"testing"

	"visasim/internal/pipeline"
)

// TestSmokeRun exercises one full simulation per scheme on a small budget:
// no panics, plausible IPC, nonzero AVF.
func TestSmokeRun(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBase, SchemeVISA, SchemeVISAOpt1, SchemeVISAOpt2} {
		res, err := Run(Config{
			Benchmarks:      []string{"bzip2", "eon", "gcc", "perlbmk"},
			Scheme:          scheme,
			Policy:          pipeline.PolicyICOUNT,
			MaxInstructions: 60_000,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		t.Logf("%v: cycles=%d IPC=%.2f hIPC=%.2f IQAVF=%.3f ROB=%.3f RF=%.3f FU=%.3f aceFrac=%.2f acc=%.3f mispred=%d wrong=%d l2=%d",
			scheme, res.Cycles, res.ThroughputIPC, res.HarmonicIPC, res.IQAVF,
			res.ROBAVF, res.RFAVF, res.FUAVF, res.ProfileACEFraction,
			res.CommittedTagAccuracy, res.Mispredicts, res.WrongPathFetched, res.L2Misses)
		t.Logf("   l1i=%.3f l1d=%.3f l2=%.3f br=%.3f occ=%.1f rql=%.1f",
			res.L1IMissRate, res.L1DMissRate, res.L2MissRate,
			res.MispredictRate, res.MeanIQOccupancy, res.MeanReadyLen)
		if res.ThroughputIPC <= 0.1 || res.ThroughputIPC > 8 {
			t.Errorf("%v: implausible IPC %.3f", scheme, res.ThroughputIPC)
		}
		if res.IQAVF <= 0 || res.IQAVF >= 1 {
			t.Errorf("%v: implausible IQ AVF %.3f", scheme, res.IQAVF)
		}
	}
}
