package core

import (
	"math"
	"testing"

	"visasim/internal/config"
	"visasim/internal/iqorg"
	"visasim/internal/pipeline"
)

// iqorgRun executes one 4-thread cell with the given machine mutations.
func iqorgRun(t *testing.T, wl []string, scheme Scheme, budget uint64, mut func(*config.Machine)) *Result {
	t.Helper()
	m := config.Default()
	if mut != nil {
		mut(&m)
	}
	cfg := Config{
		Machine:         &m,
		Benchmarks:      wl,
		Scheme:          scheme,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: budget,
	}
	if scheme == SchemeDVM {
		cfg.DVMTarget = 0.04
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestIQOrgMatrixDirections pins that each non-default organization and
// protection mode moves IPC and IQ AVF in the paper-expected direction
// relative to the unified-AGE unprotected baseline. The simulator is
// deterministic, so the inequalities are stable pins, not statistics.
func TestIQOrgMatrixDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	const budget = 40_000
	memA := []string{"mcf", "equake", "vpr", "swim"}
	mixA := []string{"gcc", "mcf", "vpr", "perlbmk"}

	// Partitioned (SMTcheck watermark): capping each thread at 17 resident
	// entries keeps memory-stalled threads from filling the queue with
	// unissuable ACE entries — occupancy and IQ AVF drop on both the MEM
	// and MIX workloads, and throughput must not pay for it (the watermark
	// is the structural form of what ICOUNT/DVM chase reactively).
	for _, wl := range [][]string{memA, mixA} {
		base := iqorgRun(t, wl, SchemeBase, budget, nil)
		part := iqorgRun(t, wl, SchemeBase, budget, func(m *config.Machine) { m.IQOrg = config.OrgPartitioned })
		t.Logf("%v partitioned: IPC %.4f->%.4f IQAVF %.4f->%.4f occ %.1f->%.1f",
			wl, base.ThroughputIPC, part.ThroughputIPC, base.IQAVF, part.IQAVF,
			base.MeanIQOccupancy, part.MeanIQOccupancy)
		if part.IQAVF >= base.IQAVF {
			t.Errorf("%v: partitioned IQAVF %.4f not below unified %.4f", wl, part.IQAVF, base.IQAVF)
		}
		if part.MeanIQOccupancy >= base.MeanIQOccupancy {
			t.Errorf("%v: partitioned occupancy %.1f not below unified %.1f",
				wl, part.MeanIQOccupancy, base.MeanIQOccupancy)
		}
		if part.ThroughputIPC < 0.95*base.ThroughputIPC {
			t.Errorf("%v: partitioned IPC %.4f collapsed vs unified %.4f",
				wl, part.ThroughputIPC, base.ThroughputIPC)
		}
		if wm := 4 * config.DefaultWatermark; part.IQHighWater > wm {
			t.Errorf("%v: high water %d exceeds 4 threads x watermark %d", wl, part.IQHighWater, wm)
		}
	}

	// SWQUE under VISA: the circular mode cannot reorder by ACE tag, so the
	// queue gives back part of VISA's vulnerable-residency win (IQ AVF up)
	// and its reduced circular capacity costs throughput (IPC down) — the
	// hardware-simplicity tradeoff the SWQUE work accepts.
	{
		uni := iqorgRun(t, mixA, SchemeVISA, budget, nil)
		sw := iqorgRun(t, mixA, SchemeVISA, budget, func(m *config.Machine) { m.IQOrg = config.OrgSWQUE })
		t.Logf("swque+visa: IPC %.4f->%.4f IQAVF %.4f->%.4f",
			uni.ThroughputIPC, sw.ThroughputIPC, uni.IQAVF, sw.IQAVF)
		if sw.IQAVF <= uni.IQAVF {
			t.Errorf("swque under VISA: IQAVF %.4f not above unified %.4f", sw.IQAVF, uni.IQAVF)
		}
		if sw.ThroughputIPC >= uni.ThroughputIPC {
			t.Errorf("swque under VISA: IPC %.4f not below unified %.4f", sw.ThroughputIPC, uni.ThroughputIPC)
		}
	}

	// Protection modes on the unmanaged machine: parity and partial
	// replication sit off the timing paths, so IPC is bit-identical and the
	// reported IQ AVF is exactly the mitigation-scaled baseline; ECC's
	// corrector delays every wakeup, so it must cost throughput while
	// mitigating the most.
	{
		base := iqorgRun(t, memA, SchemeBase, budget, nil)
		for _, tc := range []struct {
			prot string
			p    iqorg.Protection
		}{
			{config.ProtParity, iqorg.Parity},
			{config.ProtPartialRepl, iqorg.PartialReplication},
		} {
			r := iqorgRun(t, memA, SchemeBase, budget, func(m *config.Machine) { m.IQProtection = tc.prot })
			if r.ThroughputIPC != base.ThroughputIPC || r.Cycles != base.Cycles {
				t.Errorf("%s: off-path protection changed timing (IPC %.4f vs %.4f)",
					tc.prot, r.ThroughputIPC, base.ThroughputIPC)
			}
			want := base.IQAVF * tc.p.AVFScale()
			if math.Abs(r.IQAVF-want) > 1e-12 {
				t.Errorf("%s: IQAVF %.6f, want mitigation-scaled %.6f", tc.prot, r.IQAVF, want)
			}
		}
		ecc := iqorgRun(t, memA, SchemeBase, budget, func(m *config.Machine) { m.IQProtection = config.ProtECC })
		t.Logf("ecc: IPC %.4f->%.4f IQAVF %.4f->%.4f", base.ThroughputIPC, ecc.ThroughputIPC, base.IQAVF, ecc.IQAVF)
		if ecc.ThroughputIPC >= base.ThroughputIPC {
			t.Errorf("ecc: wakeup tax did not cost IPC (%.4f vs %.4f)", ecc.ThroughputIPC, base.ThroughputIPC)
		}
		if ecc.IQAVF >= 0.05*base.IQAVF {
			t.Errorf("ecc: residual IQAVF %.6f not under 5%% of baseline %.6f", ecc.IQAVF, base.IQAVF)
		}
	}

	// Protection × DVM: DVM throttles on the residual (post-mitigation)
	// AVF, so a protected queue reaches the same absolute target with less
	// throttling — fewer triggers and higher throughput.
	{
		none := iqorgRun(t, memA, SchemeDVM, budget, nil)
		par := iqorgRun(t, memA, SchemeDVM, budget, func(m *config.Machine) { m.IQProtection = config.ProtParity })
		t.Logf("dvm: none IPC %.4f triggers %d; parity IPC %.4f triggers %d",
			none.ThroughputIPC, none.DVMTriggers, par.ThroughputIPC, par.DVMTriggers)
		if par.DVMTriggers >= none.DVMTriggers {
			t.Errorf("dvm+parity: triggers %d not below unprotected %d", par.DVMTriggers, none.DVMTriggers)
		}
		if par.ThroughputIPC <= none.ThroughputIPC {
			t.Errorf("dvm+parity: IPC %.4f not above unprotected %.4f", par.ThroughputIPC, none.ThroughputIPC)
		}
	}
}

// TestIQOrgSchemeComposition: every organization x protection pair composes
// with every scheme — no panics, budget reached, plausible outputs. This is
// the integration surface the experiments matrix sweeps.
func TestIQOrgSchemeComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	wl := []string{"gcc", "mcf", "vpr", "perlbmk"}
	const budget = 8_000
	for _, org := range []string{config.OrgUnifiedAGE, config.OrgSWQUE, config.OrgPartitioned} {
		for _, prot := range []string{config.ProtNone, config.ProtParity, config.ProtECC, config.ProtPartialRepl} {
			for _, scheme := range []Scheme{SchemeBase, SchemeVISA, SchemeVISAOpt1, SchemeVISAOpt2, SchemeDVM} {
				r := iqorgRun(t, wl, scheme, budget, func(m *config.Machine) {
					m.IQOrg, m.IQProtection = org, prot
				})
				if r.TotalCommits() < budget {
					t.Errorf("%s/%s/%v: committed %d of %d", org, prot, scheme, r.TotalCommits(), budget)
				}
				if r.IQAVF < 0 || r.IQAVF > 1 || r.ThroughputIPC <= 0 {
					t.Errorf("%s/%s/%v: implausible AVF=%v IPC=%v", org, prot, scheme, r.IQAVF, r.ThroughputIPC)
				}
			}
		}
	}
}
