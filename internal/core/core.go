// Package core is the public face of the reproduction: it assembles
// benchmarks, offline vulnerability profiling, the SMT pipeline and the
// paper's reliability schemes into single-call simulations.
//
// A typical use:
//
//	res, err := core.Run(core.Config{
//	        Benchmarks:      []string{"bzip2", "eon", "gcc", "perlbmk"},
//	        Scheme:          core.SchemeVISAOpt2,
//	        Policy:          pipeline.PolicyICOUNT,
//	        MaxInstructions: 400_000,
//	})
//
// Offline profiles (the expensive ACE analysis pass) are cached per
// (benchmark, budget, window) so sweeps over schemes and policies reuse
// them.
package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"visasim/internal/ace"
	"visasim/internal/alloc"
	"visasim/internal/config"
	"visasim/internal/decision"
	"visasim/internal/dvm"
	"visasim/internal/pipeline"
	"visasim/internal/program"
	"visasim/internal/trace"
	"visasim/internal/uarch"
	"visasim/internal/workload"
)

// Scheme selects the paper's reliability mechanism under evaluation.
type Scheme uint8

// Schemes, in the order the paper introduces them.
const (
	// SchemeBase is the unmodified machine (normalisation baseline).
	SchemeBase Scheme = iota
	// SchemeVISA prioritises ready ACE-tagged instructions at issue.
	SchemeVISA
	// SchemeVISAOpt1 adds dynamic IQ resource allocation (Figure 3).
	SchemeVISAOpt1
	// SchemeVISAOpt2 adds L2-miss-sensitive allocation + FLUSH (Figure 4).
	SchemeVISAOpt2
	// SchemeDVMStatic is dynamic vulnerability management with a fixed
	// wq_ratio.
	SchemeDVMStatic
	// SchemeDVM is full dynamic vulnerability management.
	SchemeDVM

	numSchemes
)

// NumSchemes is the number of schemes.
const NumSchemes = int(numSchemes)

var schemeNames = [...]string{
	SchemeBase:      "base",
	SchemeVISA:      "visa",
	SchemeVISAOpt1:  "visa+opt1",
	SchemeVISAOpt2:  "visa+opt2",
	SchemeDVMStatic: "dvm-static",
	SchemeDVM:       "dvm",
}

func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return "scheme(?)"
}

// DefaultInstructions is the default per-run committed-instruction budget.
// (The paper simulates 400M per workload; see DESIGN.md for the scaling
// substitution.)
const DefaultInstructions = 400_000

// Config describes one simulation.
type Config struct {
	// Machine is the simulated hardware; the zero value selects the
	// paper's Table 2 configuration.
	Machine *config.Machine

	// Benchmarks names the co-scheduled threads (1 to 8; the paper's
	// workloads use 4).
	Benchmarks []string

	Scheme Scheme
	Policy pipeline.FetchPolicyKind

	// MaxInstructions is the total committed-instruction budget
	// (DefaultInstructions when 0), measured after warmup.
	MaxInstructions uint64
	// MaxCycles optionally bounds wall-clock cycles.
	MaxCycles uint64
	// Warmup commits this many instructions before statistics start
	// (a quarter of the budget when 0; negative disables warmup, and
	// every negative value canonicalizes to -1).
	Warmup int64
	// ProfileWindow is the offline ACE analysis window
	// (ace.DefaultWindow when 0).
	ProfileWindow int

	// DVMTarget is the absolute IQ-AVF reliability target for the DVM
	// schemes (typically a fraction of the baseline's MaxIQAVF).
	DVMTarget float64
	// DVMStaticRatio fixes wq_ratio for SchemeDVMStatic.
	DVMStaticRatio float64
	// DVMStructure selects the structure DVM manages (IQ by default;
	// the ROB extension implements the paper's future-work suggestion).
	DVMStructure dvm.Structure

	// Ablation knobs.

	// OracleTags replaces profiled per-PC tags with perfect
	// per-instance ACE-ness.
	OracleTags bool
	// Opt2Threshold overrides Tcache_miss for SchemeVISAOpt2 (paper
	// value when 0).
	Opt2Threshold uint64
	// IntervalCycles overrides the 10K-cycle control interval.
	IntervalCycles int

	// InvariantEvery, when positive, cross-checks the pipeline's
	// incremental counters against a full structure walk every N cycles
	// (testing aid; see pipeline.Params.InvariantEvery).
	InvariantEvery uint64
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Machine == nil {
		m := config.Default()
		out.Machine = &m
	} else if canon := out.Machine.Canonical(); canon != *out.Machine {
		// Clone before canonicalizing the machine's issue-queue axis
		// fields: `out := *c` copies the Machine pointer, and mutating
		// the caller's machine in place is exactly the aliasing bug that
		// forced the v1→v2 hash-domain bump for Warmup.
		out.Machine = &canon
	}
	if out.MaxInstructions == 0 {
		out.MaxInstructions = DefaultInstructions
	}
	switch {
	case out.Warmup == 0:
		out.Warmup = int64(out.MaxInstructions / 4)
	case out.Warmup < 0:
		// "Warmup disabled" keeps a canonical value distinct from the
		// unset sentinel 0, so canonicalization is idempotent: re-running
		// withDefaults on a canonical Config (as Run does on submissions
		// the service already canonicalized) cannot turn a disabled
		// warmup back into the default. Run clamps to 0 at the point of
		// use.
		out.Warmup = -1
	}
	if out.ProfileWindow == 0 {
		out.ProfileWindow = ace.DefaultWindow
	}
	if len(out.Benchmarks) == 0 || len(out.Benchmarks) > uarch.MaxThreads {
		return out, fmt.Errorf("core: %d benchmarks outside 1..%d", len(out.Benchmarks), uarch.MaxThreads)
	}
	switch out.Scheme {
	case SchemeDVM, SchemeDVMStatic:
		if out.DVMTarget <= 0 {
			return out, fmt.Errorf("core: scheme %v requires a positive DVMTarget", out.Scheme)
		}
	}
	return out, nil
}

// Result is one simulation's outcome.
type Result struct {
	*pipeline.Results

	Scheme Scheme
	Policy pipeline.FetchPolicyKind

	// Benchmarks echoes the thread programs.
	Benchmarks []string

	// ProfileACEFraction is the mean profiled ACE fraction of the
	// threads' committed instructions.
	ProfileACEFraction float64
	// CommittedTagAccuracy is the mean per-PC tag accuracy over
	// committed instructions (Table 1's first metric).
	CommittedTagAccuracy float64

	// DVMMeanRatio is the mean wq_ratio of a dynamic DVM run (zero for
	// other schemes); the paper configures the static variant with it.
	DVMMeanRatio float64
}

// CombinedTagAccuracy folds squashed instructions into the tag accuracy
// (Table 1's second metric, ~83% in the paper): squashed instructions are
// ground-truth un-ACE, so ACE-tagged squashed ones are mismatches.
func (r *Result) CombinedTagAccuracy() float64 {
	committed := float64(r.TotalCommits())
	total := committed + float64(r.SquashedTotal)
	if total == 0 {
		return 1
	}
	matches := r.CommittedTagAccuracy*committed + float64(r.SquashedTotal-r.SquashedTagged)
	return matches / total
}

// profileKey identifies a cached offline profile.
type profileKey struct {
	bench  string
	n      uint64
	window int
}

type profileEntry struct {
	once sync.Once
	p    *ace.Profile
	err  error
}

var (
	profileMu    sync.Mutex
	profileCache = map[profileKey]*profileEntry{}
)

// profileSlack covers in-flight instructions beyond the commit budget.
const profileSlack = 4096

// ProfileFor returns the (cached) offline vulnerability profile of bench
// covering at least n dynamic instructions with the given analysis window.
// Concurrent callers for the same key share one profiling pass.
func ProfileFor(bench workload.Benchmark, n uint64, window int) (*ace.Profile, error) {
	key := profileKey{bench.Name, n, window}
	profileMu.Lock()
	e, ok := profileCache[key]
	if !ok {
		e = &profileEntry{}
		profileCache[key] = e
	}
	profileMu.Unlock()

	e.once.Do(func() {
		prog, err := bench.Generate()
		if err != nil {
			e.err = err
			return
		}
		// Thread 0 unconditionally: the address-space tag does not
		// affect ACE-ness (it is a bijection on addresses), so one
		// profile serves every thread slot.
		e.p, e.err = ace.Run(prog, bench.Params.Seed, 0, n, window)
	})
	return e.p, e.err
}

// taggedProgEntry is a cached generated program with its profiled ACE tags
// applied, plus the profile it was tagged from.
type taggedProgEntry struct {
	once sync.Once
	prog *program.Program
	prof *ace.Profile
	err  error
}

var (
	taggedMu    sync.Mutex
	taggedCache = map[profileKey]*taggedProgEntry{}
)

// taggedProgramFor returns the (cached) generated program for bench with
// the offline profile's ACE tags applied, and that profile. Program
// generation and tag application are deterministic per key, executors never
// mutate the program, and the address-space tag is applied per thread at
// execution — so one tagged program safely serves every thread slot of
// every cell in a sweep. Concurrent callers for the same key share one
// generation pass.
func taggedProgramFor(bench workload.Benchmark, n uint64, window int) (*program.Program, *ace.Profile, error) {
	key := profileKey{bench.Name, n, window}
	taggedMu.Lock()
	e, ok := taggedCache[key]
	if !ok {
		e = &taggedProgEntry{}
		taggedCache[key] = e
	}
	taggedMu.Unlock()

	e.once.Do(func() {
		prof, err := ProfileFor(bench, n, window)
		if err != nil {
			e.err = err
			return
		}
		prog, err := bench.Generate()
		if err != nil {
			e.err = err
			return
		}
		prof.Apply(prog)
		e.prog, e.prof = prog, prof
	})
	return e.prog, e.prof, e.err
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	res, _, err := RunTraced(cfg, RunOptions{})
	return res, err
}

// RunTraced executes one simulation with decision tracing and/or a forced
// counterfactual schedule (DESIGN.md §10). The returned trace is nil when
// opt.TraceLevel is zero. RunOptions is deliberately separate from Config —
// none of it joins Config.Hash, because tracing and replay must never change
// what a content address means.
func RunTraced(cfg Config, opt RunOptions) (*Result, *decision.Trace, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}

	warmup := c.Warmup
	if warmup < 0 { // canonical "disabled" sentinel
		warmup = 0
	}

	streams := make([]*trace.Stream, len(c.Benchmarks))
	var aceFrac, tagAcc float64
	profLen := c.MaxInstructions + uint64(warmup) + profileSlack
	for i, name := range c.Benchmarks {
		b, err := workload.Get(name)
		if err != nil {
			return nil, nil, err
		}
		prog, prof, err := taggedProgramFor(b, profLen, c.ProfileWindow)
		if err != nil {
			return nil, nil, fmt.Errorf("core: profiling %s: %w", name, err)
		}
		exec := trace.NewExecutor(prog, b.Params.Seed, i)
		streams[i] = trace.NewStream(exec, prof.Bits)
		aceFrac += prof.ACEFraction()
		tagAcc += prof.Accuracy()
	}
	aceFrac /= float64(len(c.Benchmarks))
	tagAcc /= float64(len(c.Benchmarks))

	sched := uarch.SchedOldestFirst
	var ctrl pipeline.Controller
	switch c.Scheme {
	case SchemeVISA:
		sched = uarch.SchedVISA
	case SchemeVISAOpt1:
		sched = uarch.SchedVISA
		ctrl = alloc.NewOpt1()
	case SchemeVISAOpt2:
		sched = uarch.SchedVISA
		o2 := alloc.NewOpt2()
		if c.Opt2Threshold > 0 {
			o2.Tcache = c.Opt2Threshold
		}
		ctrl = o2
	case SchemeDVM:
		d := dvm.New(c.DVMTarget)
		d.Struct = c.DVMStructure
		ctrl = d
	case SchemeDVMStatic:
		ratio := c.DVMStaticRatio
		if ratio <= 0 {
			ratio = 1
		}
		d := dvm.NewStatic(c.DVMTarget, ratio)
		d.Struct = c.DVMStructure
		ctrl = d
	}

	params := pipeline.Params{
		Machine:            *c.Machine,
		Scheduler:          sched,
		Policy:             c.Policy,
		Controller:         ctrl,
		Streams:            streams,
		MaxInstructions:    c.MaxInstructions,
		MaxCycles:          c.MaxCycles,
		WarmupInstructions: uint64(warmup),
		OracleTags:         c.OracleTags,
		IntervalCycles:     c.IntervalCycles,
		InvariantEvery:     c.InvariantEvery,
		Forced:             opt.Forced,
		DisableSkipAhead:   opt.DisableSkipAhead,
		Pool:               opt.Pool,
	}
	// Only assign the sink when recording: a nil *Recorder stored in the
	// interface would read as non-nil inside the pipeline.
	var rec *decision.Recorder
	if opt.TraceLevel > 0 {
		rec = decision.NewRecorder(opt.TraceLevel)
		params.Decisions = rec
	}
	proc, err := pipeline.New(params)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	res := proc.Run()
	if opt.SimTime != nil {
		*opt.SimTime = time.Since(t0)
	}

	out := &Result{
		Results:              res,
		Scheme:               c.Scheme,
		Policy:               c.Policy,
		Benchmarks:           append([]string(nil), c.Benchmarks...),
		ProfileACEFraction:   aceFrac,
		CommittedTagAccuracy: tagAcc,
	}
	if d, ok := ctrl.(*dvm.Controller); ok {
		out.DVMMeanRatio = d.MeanRatio()
	}

	var tr *decision.Trace
	if rec != nil {
		tr = rec.Trace()
		tr.Scheme = c.Scheme.String()
		tr.Policy = c.Policy.String()
		tr.Controller = controllerName(c.Scheme)
		tr.CellKey = opt.CellKey
		if blob, err := json.Marshal(c); err == nil {
			tr.ConfigJSON = blob
		}
		if h, err := cfg.Hash(); err == nil {
			tr.ConfigHash = h
		}
		tr.Summary = decision.Summary{
			Cycles:         res.Cycles,
			Commits:        res.TotalCommits(),
			ThroughputIPC:  res.ThroughputIPC,
			IQAVF:          res.IQAVF,
			ROBAVF:         res.ROBAVF,
			MaxIQAVF:       res.MaxIQAVF,
			PolicySwitches: res.PolicySwitches,
			DVMTriggers:    res.DVMTriggers,
		}
	}
	return out, tr, nil
}

// RunOptions are the tracing/replay knobs of RunTraced. None of these fields
// participate in Config.Hash — a traced run simulates the exact same machine
// as an untraced one, and the content-addressed result cache must keep
// treating them as the same cell.
type RunOptions struct {
	// TraceLevel enables decision recording: 0 off, 1 decision edges,
	// 2 adds per-sample observations.
	TraceLevel int
	// Forced overlays a counterfactual schedule on the live controller
	// (empty forces nothing, reproducing the recorded run exactly).
	Forced decision.Schedule
	// CellKey labels the trace with the harness/sweep cell key.
	CellKey string
	// DisableSkipAhead forces cycle-by-cycle simulation (parity testing;
	// see pipeline.Params.DisableSkipAhead). Results are identical either
	// way, which is why it lives here and not in Config.
	DisableSkipAhead bool
	// Pool shares a uop free list across strictly sequential runs (a sweep
	// worker's cells); nil gives the run a private pool. Result-neutral.
	Pool *uarch.UopPool
	// SimTime, when non-nil, receives the wall time of the pipeline run
	// alone — excluding workload synthesis, ACE profiling and processor
	// construction — so throughput benchmarks can report the core loop's
	// rate separately from the cell's inclusive cost. Out-of-band on
	// purpose: wall time is non-deterministic and must never enter Result.
	SimTime *time.Duration
}

// controllerName names the runtime controller a scheme installs ("" when the
// scheme runs open loop).
func controllerName(s Scheme) string {
	switch s {
	case SchemeVISAOpt1:
		return "opt1"
	case SchemeVISAOpt2:
		return "opt2"
	case SchemeDVM:
		return "dvm"
	case SchemeDVMStatic:
		return "dvm-static"
	}
	return ""
}

// RunMix is a convenience wrapper running one of Table 3's workloads.
func RunMix(mix workload.Mix, scheme Scheme, policy pipeline.FetchPolicyKind, budget uint64) (*Result, error) {
	return Run(Config{
		Benchmarks:      mix.Benchmarks[:],
		Scheme:          scheme,
		Policy:          policy,
		MaxInstructions: budget,
	})
}
