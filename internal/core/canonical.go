package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// hashDomain versions the cell-hash encoding. Bump it whenever Config's
// canonical form changes meaning (field added, default changed), so stale
// content addresses can never alias a different simulation.
//
// History: v1 → v2 fixed a Warmup canonicalization aliasing bug; v2 → v3
// added the issue-queue organization axes (Machine.IQOrg, IQWatermark,
// IQProtection) to the canonical machine encoding. See DESIGN.md's
// hash-domain history for when results remain comparable across domains.
const hashDomain = "visasim-config-v3\n"

// Canonical returns the configuration with every defaulted field filled in
// (machine, budget, warmup, profile window), validated exactly as Run
// validates it. Two Configs that Run identically — e.g. one with
// MaxInstructions zero and one with DefaultInstructions spelled out, or
// any two negative Warmup values (both "disabled", canonically -1) —
// canonicalize to equal values, which is what makes Hash a sound cache
// key. Canonicalization is idempotent: Canonical of a canonical Config is
// the identity, so re-canonicalizing (as Run does on already-canonical
// submissions) never changes what is simulated.
func (c Config) Canonical() (Config, error) {
	return c.withDefaults()
}

// Hash returns a stable content address for the simulation c describes: the
// hex SHA-256 of the canonical configuration's JSON encoding under a
// versioned domain prefix. Every field that influences the simulation is
// part of the canonical form, and the simulator is deterministic, so equal
// hashes imply byte-identical Results; the simulation service uses this as
// its result-cache key.
func (c Config) Hash() (string, error) {
	canon, err := c.Canonical()
	if err != nil {
		return "", err
	}
	blob, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("core: hashing config: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(hashDomain))
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil)), nil
}
