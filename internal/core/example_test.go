package core_test

import (
	"fmt"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

// Example runs the smallest meaningful simulation: one thread, baseline
// machine, and prints whether vulnerability accounting produced output.
func Example() {
	res, err := core.Run(core.Config{
		Benchmarks:      []string{"gcc"},
		Scheme:          core.SchemeBase,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 5000,
		Warmup:          -1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.TotalCommits() >= 5000, res.IQAVF > 0 && res.IQAVF < 1)
	// Output: true true
}

// ExampleRun_visa shows how a reliability scheme is selected.
func ExampleRun_visa() {
	res, err := core.Run(core.Config{
		Benchmarks:      []string{"bzip2", "eon"},
		Scheme:          core.SchemeVISA,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 5000,
		Warmup:          -1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Scheme, len(res.Commits))
	// Output: visa 2
}
