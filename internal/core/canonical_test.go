package core

import (
	"reflect"
	"testing"

	"visasim/internal/config"
	"visasim/internal/pipeline"
)

func TestHashDefaultInsensitive(t *testing.T) {
	implicit := Config{
		Benchmarks: []string{"gcc", "mcf"},
		Scheme:     SchemeVISA,
		Policy:     pipeline.PolicyICOUNT,
	}
	m := config.Default()
	explicit := Config{
		Machine:         &m,
		Benchmarks:      []string{"gcc", "mcf"},
		Scheme:          SchemeVISA,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: DefaultInstructions,
		Warmup:          DefaultInstructions / 4,
	}
	hi, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Fatalf("spelled-out defaults changed the hash: %s vs %s", hi, he)
	}
	if len(hi) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", hi)
	}
}

func TestHashSeparatesConfigs(t *testing.T) {
	base := Config{Benchmarks: []string{"gcc"}, Scheme: SchemeBase}
	seen := map[string]string{}
	for name, cfg := range map[string]Config{
		"base":      base,
		"visa":      {Benchmarks: []string{"gcc"}, Scheme: SchemeVISA},
		"policy":    {Benchmarks: []string{"gcc"}, Scheme: SchemeBase, Policy: pipeline.PolicyFLUSH},
		"budget":    {Benchmarks: []string{"gcc"}, Scheme: SchemeBase, MaxInstructions: 12345},
		"bench":     {Benchmarks: []string{"mcf"}, Scheme: SchemeBase},
		"twothread": {Benchmarks: []string{"gcc", "gcc"}, Scheme: SchemeBase},
	} {
		h, err := cfg.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("configs %s and %s collide on %s", name, prev, h)
		}
		seen[h] = name
	}
}

// TestCanonicalIdempotent pins the property the service relies on:
// canonicalizing an already-canonical Config is the identity, so the server
// can hash a canonical form and later Run it without the defaults shifting
// underneath (notably Warmup<0, whose canonical form must not collapse into
// the "unset" sentinel 0).
func TestCanonicalIdempotent(t *testing.T) {
	for name, cfg := range map[string]Config{
		"defaults":  {Benchmarks: []string{"gcc"}, Scheme: SchemeVISA},
		"no-warmup": {Benchmarks: []string{"gcc"}, Scheme: SchemeVISA, Warmup: -7},
		"explicit":  {Benchmarks: []string{"gcc", "mcf"}, Scheme: SchemeBase, MaxInstructions: 9999, Warmup: 123},
	} {
		once, err := cfg.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		twice, err := once.Canonical()
		if err != nil {
			t.Fatalf("%s: re-canonicalize: %v", name, err)
		}
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("%s: Canonical is not idempotent:\nonce:  %+v\ntwice: %+v", name, once, twice)
		}
		h1, err := once.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h2, err := cfg.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h1 != h2 {
			t.Errorf("%s: canonical form hashes differently from the original: %s vs %s", name, h1, h2)
		}
	}
}

// TestHashWarmupDisabled checks that "warmup disabled" is one equivalence
// class — every negative Warmup hashes identically — and that it is distinct
// from both the default and an explicit warmup.
func TestHashWarmupDisabled(t *testing.T) {
	base := Config{Benchmarks: []string{"gcc"}, Scheme: SchemeBase}
	hash := func(warmup int64) string {
		t.Helper()
		cfg := base
		cfg.Warmup = warmup
		h, err := cfg.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	off1, off5 := hash(-1), hash(-5)
	if off1 != off5 {
		t.Errorf("Warmup -1 and -5 both disable warmup but hash differently: %s vs %s", off1, off5)
	}
	if def := hash(0); def == off1 {
		t.Errorf("disabled warmup aliases the default-warmup hash %s", def)
	}
	if explicit := hash(DefaultInstructions / 4); explicit == off1 {
		t.Errorf("disabled warmup aliases an explicit warmup hash %s", explicit)
	}
	canon, err := Config{Benchmarks: []string{"gcc"}, Scheme: SchemeBase, Warmup: -5}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Warmup != -1 {
		t.Errorf("canonical disabled warmup = %d, want -1", canon.Warmup)
	}
}

// TestHashIQAxesCanonicalize pins the v3 hash-domain hygiene for the
// issue-queue axes, mirroring the Warmup precedent from v2: the defaults
// canonicalize to explicit spellings ("unified-age"/"none", not ""), so a
// machine that leaves the axes unset and one that spells them out are one
// equivalence class, while any non-default organization, watermark, or
// protection separates. Canonicalization must clone the machine — never
// mutate the caller's through the shared pointer.
func TestHashIQAxesCanonicalize(t *testing.T) {
	hash := func(mut func(*config.Machine)) string {
		t.Helper()
		m := config.Default()
		if mut != nil {
			mut(&m)
		}
		h, err := (Config{Machine: &m, Benchmarks: []string{"gcc"}, Scheme: SchemeBase}).Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	def := hash(nil)
	if implicit := hash(func(m *config.Machine) { m.IQOrg, m.IQProtection = "", "" }); implicit != def {
		t.Errorf("empty axis spellings must hash like the explicit defaults: %s vs %s", implicit, def)
	}
	seen := map[string]string{"default": def}
	for name, mut := range map[string]func(*config.Machine){
		"swque":       func(m *config.Machine) { m.IQOrg = config.OrgSWQUE },
		"partitioned": func(m *config.Machine) { m.IQOrg = config.OrgPartitioned },
		"watermark":   func(m *config.Machine) { m.IQOrg = config.OrgPartitioned; m.IQWatermark = 24 },
		"parity":      func(m *config.Machine) { m.IQProtection = config.ProtParity },
		"ecc":         func(m *config.Machine) { m.IQProtection = config.ProtECC },
	} {
		h := hash(mut)
		if prev, dup := seen[name]; dup {
			t.Fatalf("axis settings %s and %s collide on %s", name, prev, h)
		}
		for prevName, prevHash := range seen {
			if h == prevHash {
				t.Errorf("axis settings %s and %s collide on %s", name, prevName, h)
			}
		}
		seen[name] = h
	}
	// The partitioned default watermark must be explicit in the canonical
	// form: watermark 0 and watermark 17 are the same machine.
	implicitWM := hash(func(m *config.Machine) { m.IQOrg = config.OrgPartitioned })
	explicitWM := hash(func(m *config.Machine) {
		m.IQOrg = config.OrgPartitioned
		m.IQWatermark = config.DefaultWatermark
	})
	if implicitWM != explicitWM {
		t.Errorf("default watermark must canonicalize explicitly: %s vs %s", implicitWM, explicitWM)
	}
	// Canonicalizing must not write through the caller's Machine pointer.
	m := config.Default()
	m.IQOrg = ""
	cfg := Config{Machine: &m, Benchmarks: []string{"gcc"}, Scheme: SchemeBase}
	if _, err := cfg.Canonical(); err != nil {
		t.Fatal(err)
	}
	if m.IQOrg != "" {
		t.Error("Canonical mutated the caller's machine through the shared pointer")
	}
}

func TestHashRejectsInvalidConfig(t *testing.T) {
	if _, err := (Config{}).Hash(); err == nil {
		t.Fatal("empty benchmark list hashed without error")
	}
	if _, err := (Config{Benchmarks: []string{"gcc"}, Scheme: SchemeDVM}).Hash(); err == nil {
		t.Fatal("DVM without a target hashed without error")
	}
}
