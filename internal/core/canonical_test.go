package core

import (
	"testing"

	"visasim/internal/config"
	"visasim/internal/pipeline"
)

func TestHashDefaultInsensitive(t *testing.T) {
	implicit := Config{
		Benchmarks: []string{"gcc", "mcf"},
		Scheme:     SchemeVISA,
		Policy:     pipeline.PolicyICOUNT,
	}
	m := config.Default()
	explicit := Config{
		Machine:         &m,
		Benchmarks:      []string{"gcc", "mcf"},
		Scheme:          SchemeVISA,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: DefaultInstructions,
		Warmup:          DefaultInstructions / 4,
	}
	hi, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Fatalf("spelled-out defaults changed the hash: %s vs %s", hi, he)
	}
	if len(hi) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", hi)
	}
}

func TestHashSeparatesConfigs(t *testing.T) {
	base := Config{Benchmarks: []string{"gcc"}, Scheme: SchemeBase}
	seen := map[string]string{}
	for name, cfg := range map[string]Config{
		"base":      base,
		"visa":      {Benchmarks: []string{"gcc"}, Scheme: SchemeVISA},
		"policy":    {Benchmarks: []string{"gcc"}, Scheme: SchemeBase, Policy: pipeline.PolicyFLUSH},
		"budget":    {Benchmarks: []string{"gcc"}, Scheme: SchemeBase, MaxInstructions: 12345},
		"bench":     {Benchmarks: []string{"mcf"}, Scheme: SchemeBase},
		"twothread": {Benchmarks: []string{"gcc", "gcc"}, Scheme: SchemeBase},
	} {
		h, err := cfg.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("configs %s and %s collide on %s", name, prev, h)
		}
		seen[h] = name
	}
}

func TestHashRejectsInvalidConfig(t *testing.T) {
	if _, err := (Config{}).Hash(); err == nil {
		t.Fatal("empty benchmark list hashed without error")
	}
	if _, err := (Config{Benchmarks: []string{"gcc"}, Scheme: SchemeDVM}).Hash(); err == nil {
		t.Fatal("DVM without a target hashed without error")
	}
}
