package core

import (
	"reflect"
	"testing"

	"visasim/internal/config"
	"visasim/internal/pipeline"
)

func TestHashDefaultInsensitive(t *testing.T) {
	implicit := Config{
		Benchmarks: []string{"gcc", "mcf"},
		Scheme:     SchemeVISA,
		Policy:     pipeline.PolicyICOUNT,
	}
	m := config.Default()
	explicit := Config{
		Machine:         &m,
		Benchmarks:      []string{"gcc", "mcf"},
		Scheme:          SchemeVISA,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: DefaultInstructions,
		Warmup:          DefaultInstructions / 4,
	}
	hi, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Fatalf("spelled-out defaults changed the hash: %s vs %s", hi, he)
	}
	if len(hi) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", hi)
	}
}

func TestHashSeparatesConfigs(t *testing.T) {
	base := Config{Benchmarks: []string{"gcc"}, Scheme: SchemeBase}
	seen := map[string]string{}
	for name, cfg := range map[string]Config{
		"base":      base,
		"visa":      {Benchmarks: []string{"gcc"}, Scheme: SchemeVISA},
		"policy":    {Benchmarks: []string{"gcc"}, Scheme: SchemeBase, Policy: pipeline.PolicyFLUSH},
		"budget":    {Benchmarks: []string{"gcc"}, Scheme: SchemeBase, MaxInstructions: 12345},
		"bench":     {Benchmarks: []string{"mcf"}, Scheme: SchemeBase},
		"twothread": {Benchmarks: []string{"gcc", "gcc"}, Scheme: SchemeBase},
	} {
		h, err := cfg.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("configs %s and %s collide on %s", name, prev, h)
		}
		seen[h] = name
	}
}

// TestCanonicalIdempotent pins the property the service relies on:
// canonicalizing an already-canonical Config is the identity, so the server
// can hash a canonical form and later Run it without the defaults shifting
// underneath (notably Warmup<0, whose canonical form must not collapse into
// the "unset" sentinel 0).
func TestCanonicalIdempotent(t *testing.T) {
	for name, cfg := range map[string]Config{
		"defaults":  {Benchmarks: []string{"gcc"}, Scheme: SchemeVISA},
		"no-warmup": {Benchmarks: []string{"gcc"}, Scheme: SchemeVISA, Warmup: -7},
		"explicit":  {Benchmarks: []string{"gcc", "mcf"}, Scheme: SchemeBase, MaxInstructions: 9999, Warmup: 123},
	} {
		once, err := cfg.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		twice, err := once.Canonical()
		if err != nil {
			t.Fatalf("%s: re-canonicalize: %v", name, err)
		}
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("%s: Canonical is not idempotent:\nonce:  %+v\ntwice: %+v", name, once, twice)
		}
		h1, err := once.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h2, err := cfg.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h1 != h2 {
			t.Errorf("%s: canonical form hashes differently from the original: %s vs %s", name, h1, h2)
		}
	}
}

// TestHashWarmupDisabled checks that "warmup disabled" is one equivalence
// class — every negative Warmup hashes identically — and that it is distinct
// from both the default and an explicit warmup.
func TestHashWarmupDisabled(t *testing.T) {
	base := Config{Benchmarks: []string{"gcc"}, Scheme: SchemeBase}
	hash := func(warmup int64) string {
		t.Helper()
		cfg := base
		cfg.Warmup = warmup
		h, err := cfg.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	off1, off5 := hash(-1), hash(-5)
	if off1 != off5 {
		t.Errorf("Warmup -1 and -5 both disable warmup but hash differently: %s vs %s", off1, off5)
	}
	if def := hash(0); def == off1 {
		t.Errorf("disabled warmup aliases the default-warmup hash %s", def)
	}
	if explicit := hash(DefaultInstructions / 4); explicit == off1 {
		t.Errorf("disabled warmup aliases an explicit warmup hash %s", explicit)
	}
	canon, err := Config{Benchmarks: []string{"gcc"}, Scheme: SchemeBase, Warmup: -5}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Warmup != -1 {
		t.Errorf("canonical disabled warmup = %d, want -1", canon.Warmup)
	}
}

func TestHashRejectsInvalidConfig(t *testing.T) {
	if _, err := (Config{}).Hash(); err == nil {
		t.Fatal("empty benchmark list hashed without error")
	}
	if _, err := (Config{Benchmarks: []string{"gcc"}, Scheme: SchemeDVM}).Hash(); err == nil {
		t.Fatal("DVM without a target hashed without error")
	}
}
