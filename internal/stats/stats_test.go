package stats

import (
	"math"
	"testing"
)

func TestThroughputIPC(t *testing.T) {
	if got := ThroughputIPC([]uint64{100, 200, 300}, 200); got != 3 {
		t.Fatalf("IPC %v", got)
	}
	if ThroughputIPC([]uint64{1}, 0) != 0 {
		t.Fatal("zero cycles must yield 0")
	}
}

func TestHarmonicIPC(t *testing.T) {
	// Equal threads: harmonic IPC equals throughput IPC.
	if got, want := HarmonicIPC([]uint64{100, 100}, 100), 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("equal-thread harmonic %v, want %v", got, want)
	}
	// Unequal threads: harmonic below throughput (fairness penalty).
	thru := ThroughputIPC([]uint64{300, 10}, 100)
	harm := HarmonicIPC([]uint64{300, 10}, 100)
	if harm >= thru {
		t.Fatalf("harmonic %v should be below throughput %v", harm, thru)
	}
	// A starved thread zeroes it.
	if HarmonicIPC([]uint64{100, 0}, 100) != 0 {
		t.Fatal("starved thread should zero harmonic IPC")
	}
}

func TestPVE(t *testing.T) {
	ivs := []Interval{
		{IQAVF: 0.1}, {IQAVF: 0.3}, {IQAVF: 0.5}, {IQAVF: 0.7},
	}
	if got := PVE(ivs, 0.4); got != 0.5 {
		t.Fatalf("PVE %v", got)
	}
	if PVE(nil, 0.4) != 0 {
		t.Fatal("empty intervals")
	}
	if PVE(ivs, 0.7) != 0 {
		t.Fatal("threshold equal to max should not count")
	}
}

func TestMaxAndMeanIQAVF(t *testing.T) {
	ivs := []Interval{
		{IQAVF: 0.2, Cycles: 10},
		{IQAVF: 0.6, Cycles: 30},
	}
	if got := MaxIQAVF(ivs); got != 0.6 {
		t.Fatalf("max %v", got)
	}
	want := (0.2*10 + 0.6*30) / 40
	if got := MeanIQAVF(ivs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean %v want %v", got, want)
	}
}

func TestRQHistogram(t *testing.T) {
	h := NewRQHistogram(16)
	h.Observe(0, 0)
	h.Observe(4, 2)
	h.Observe(4, 4)
	h.Observe(8, 8)
	if got := h.Frac(4); got != 0.5 {
		t.Fatalf("frac %v", got)
	}
	// Two cycles at length 4 with 2 and 4 ACE of 4 ready each:
	// (2+4)/(2*4) = 75%.
	if got := h.ACEPct(4); got != 75 {
		t.Fatalf("ACE%% %v", got)
	}
	if got := h.MaxObserved(); got != 8 {
		t.Fatalf("max %d", got)
	}
	if got := h.MeanLen(); got != (0+4+4+8)/4.0 {
		t.Fatalf("mean %v", got)
	}
	// Overall ACE%: (2+4+8)/(4+4+8).
	if got, want := h.MeanACEPct(), 100*14.0/16.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean ACE%% %v want %v", got, want)
	}
}

func TestRQHistogramClamp(t *testing.T) {
	h := NewRQHistogram(4)
	h.Observe(100, 3) // clamps to the top bucket
	if h.Cycles[4] != 1 {
		t.Fatal("overflow observation lost")
	}
}

func TestACEPctEdge(t *testing.T) {
	h := NewRQHistogram(4)
	if h.ACEPct(0) != 0 || h.ACEPct(3) != 0 {
		t.Fatal("unobserved lengths must report 0")
	}
}
