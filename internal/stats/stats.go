// Package stats collects and summarises simulation statistics: per-interval
// records (the paper samples every 10K cycles), ready-queue histograms
// (Figure 2), throughput and harmonic IPC, and the percentage-of-
// vulnerability-emergencies (PVE) metric used to evaluate DVM.
package stats

// Interval is one sampling interval's record.
type Interval struct {
	Index   int
	Cycles  uint64
	Commits uint64
	// IPC is the interval's committed instructions per cycle.
	IPC float64
	// AvgReadyLen is the mean ready-queue length over the interval.
	AvgReadyLen float64
	// L2Misses is the number of data L2 miss events in the interval.
	L2Misses uint64
	// IQAVF is the interval's ground-truth IQ AVF.
	IQAVF float64
	// IQAVFTagged is the interval AVF estimated from per-PC tags (what
	// DVM's online estimator sees).
	IQAVFTagged float64
	// ROBAVF is the interval's ground-truth reorder-buffer AVF (used by
	// the ROB-DVM extension).
	ROBAVF float64

	// Per-stage telemetry (PR 5): what the front end and the controllers
	// were doing during the interval, so a slow or vulnerable interval is
	// explainable from its record alone.

	// MeanIQOcc is the mean issue-queue occupancy over the interval.
	MeanIQOcc float64
	// PolicySwitches counts fetch-policy mode changes in the interval
	// (FLUSH semantics engaging or disengaging via a controller decision).
	PolicySwitches uint64
	// DVMTriggers counts controller decisions that newly engaged
	// waiting-queue throttling (DVM's lever) in the interval.
	DVMTriggers uint64
}

// ThroughputIPC returns total commits per cycle.
func ThroughputIPC(commits []uint64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	var total uint64
	for _, c := range commits {
		total += c
	}
	return float64(total) / float64(cycles)
}

// HarmonicIPC returns the harmonic mean of per-thread IPCs multiplied by
// the thread count (Luo et al., ISPASS 2001): a throughput-style number
// that collapses when any thread is starved, so it rewards fairness.
func HarmonicIPC(commits []uint64, cycles uint64) float64 {
	if cycles == 0 || len(commits) == 0 {
		return 0
	}
	var inv float64
	for _, c := range commits {
		if c == 0 {
			return 0
		}
		inv += float64(cycles) / float64(c)
	}
	return float64(len(commits)) * float64(len(commits)) / inv
}

// PVE returns the fraction of intervals whose ground-truth IQ AVF exceeds
// threshold — the percentage of vulnerability emergencies.
func PVE(intervals []Interval, threshold float64) float64 {
	if len(intervals) == 0 {
		return 0
	}
	n := 0
	for _, iv := range intervals {
		if iv.IQAVF > threshold {
			n++
		}
	}
	return float64(n) / float64(len(intervals))
}

// MaxIQAVF returns the maximum interval IQ AVF observed — the paper's
// MaxIQ_AVF reference point for DVM thresholds.
func MaxIQAVF(intervals []Interval) float64 {
	m := 0.0
	for _, iv := range intervals {
		if iv.IQAVF > m {
			m = iv.IQAVF
		}
	}
	return m
}

// MeanIQAVF returns the cycle-weighted mean interval IQ AVF.
func MeanIQAVF(intervals []Interval) float64 {
	var sum float64
	var cycles uint64
	for _, iv := range intervals {
		sum += iv.IQAVF * float64(iv.Cycles)
		cycles += iv.Cycles
	}
	if cycles == 0 {
		return 0
	}
	return sum / float64(cycles)
}

// RQHistogram accumulates the joint distribution of ready-queue length and
// ready-ACE counts per cycle (Figure 2 of the paper).
// Every field is exported and the cycle total is derived from Cycles, so
// the histogram survives a JSON round-trip (the simulation service ships
// Results over HTTP) without private state.
type RQHistogram struct {
	// Cycles[l] counts cycles with ready-queue length l.
	Cycles []uint64
	// ACESum[l] sums the number of ready ACE instructions over those
	// cycles.
	ACESum []uint64
}

// total returns the number of observed cycles (the sum over all lengths).
func (h *RQHistogram) total() uint64 {
	var n uint64
	for _, c := range h.Cycles {
		n += c
	}
	return n
}

// NewRQHistogram returns a histogram for ready-queue lengths 0..maxLen.
func NewRQHistogram(maxLen int) *RQHistogram {
	return &RQHistogram{
		Cycles: make([]uint64, maxLen+1),
		ACESum: make([]uint64, maxLen+1),
	}
}

// Observe records one cycle with ready-queue length l, of which ace are
// ACE instructions.
func (h *RQHistogram) Observe(l, ace int) {
	if l >= len(h.Cycles) {
		l = len(h.Cycles) - 1
	}
	h.Cycles[l]++
	h.ACESum[l] += uint64(ace)
}

// ObserveN records n identical cycles in one update (the pipeline's
// dead-cycle skip-ahead accounts a whole skipped span at once).
func (h *RQHistogram) ObserveN(l, ace int, n uint64) {
	if l >= len(h.Cycles) {
		l = len(h.Cycles) - 1
	}
	h.Cycles[l] += n
	h.ACESum[l] += uint64(ace) * n
}

// Frac returns the fraction of cycles with ready-queue length l.
func (h *RQHistogram) Frac(l int) float64 {
	total := h.total()
	if total == 0 {
		return 0
	}
	return float64(h.Cycles[l]) / float64(total)
}

// ACEPct returns the mean ACE percentage among ready instructions at
// length l (0 when l was never observed or l == 0).
func (h *RQHistogram) ACEPct(l int) float64 {
	if l == 0 || h.Cycles[l] == 0 {
		return 0
	}
	return 100 * float64(h.ACESum[l]) / (float64(h.Cycles[l]) * float64(l))
}

// MaxObserved returns the largest length with nonzero cycle count.
func (h *RQHistogram) MaxObserved() int {
	for l := len(h.Cycles) - 1; l >= 0; l-- {
		if h.Cycles[l] > 0 {
			return l
		}
	}
	return 0
}

// MeanLen returns the mean ready-queue length.
func (h *RQHistogram) MeanLen() float64 {
	total := h.total()
	if total == 0 {
		return 0
	}
	var sum uint64
	for l, c := range h.Cycles {
		sum += uint64(l) * c
	}
	return float64(sum) / float64(total)
}

// MeanACEPct returns the overall mean ACE percentage among ready
// instructions across all cycles with a nonempty ready queue.
func (h *RQHistogram) MeanACEPct() float64 {
	var ace, all uint64
	for l := 1; l < len(h.Cycles); l++ {
		ace += h.ACESum[l]
		all += uint64(l) * h.Cycles[l]
	}
	if all == 0 {
		return 0
	}
	return 100 * float64(ace) / float64(all)
}
