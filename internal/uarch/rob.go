package uarch

// ROB is one thread's reorder buffer: a FIFO ring of in-flight uops in
// program (fetch) order. Dispatch appends at the tail; commit pops from the
// head; squash truncates the tail back to a branch.
//
// Alongside the uop ring it keeps a parallel completed-flag ring
// (struct-of-arrays): commit polls the head flag every cycle, and reading
// one dense bool beats dereferencing the head uop just to look at its
// stage — the common case is "head not completed yet".
type ROB struct {
	buf       []*Uop
	completed []bool
	head      int
	len       int
}

// NewROB returns a reorder buffer with size entries.
func NewROB(size int) *ROB {
	return &ROB{buf: make([]*Uop, size), completed: make([]bool, size)}
}

// Size returns the capacity.
func (r *ROB) Size() int { return len(r.buf) }

// Len returns the occupancy.
func (r *ROB) Len() int { return r.len }

// Full reports whether no entry is free.
func (r *ROB) Full() bool { return r.len == len(r.buf) }

// Empty reports whether the buffer holds nothing.
func (r *ROB) Empty() bool { return r.len == 0 }

// Push appends u at the tail and records its slot. It panics when full.
func (r *ROB) Push(u *Uop) {
	if r.Full() {
		panic("uarch: ROB push into full buffer")
	}
	slot := (r.head + r.len) % len(r.buf)
	r.buf[slot] = u
	r.completed[slot] = false
	u.ROBSlot = int32(slot)
	r.len++
}

// Head returns the oldest uop, or nil.
func (r *ROB) Head() *Uop {
	if r.len == 0 {
		return nil
	}
	return r.buf[r.head]
}

// HeadCompleted reports whether the buffer is nonempty and its oldest uop
// has completed — the commit stage's per-cycle poll, answered from the
// dense flag ring.
func (r *ROB) HeadCompleted() bool {
	return r.len > 0 && r.completed[r.head]
}

// MarkCompleted sets u's completed flag; writeback calls it when u's stage
// advances to StageCompleted while resident.
func (r *ROB) MarkCompleted(u *Uop) {
	if u.ROBSlot < 0 || r.buf[u.ROBSlot] != u {
		panic("uarch: ROB completion mark for non-resident uop")
	}
	r.completed[u.ROBSlot] = true
}

// Pop removes and returns the oldest uop. It panics when empty.
func (r *ROB) Pop() *Uop {
	if r.len == 0 {
		panic("uarch: ROB pop from empty buffer")
	}
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.completed[r.head] = false
	u.ROBSlot = -1
	r.head = (r.head + 1) % len(r.buf)
	r.len--
	return u
}

// Tail returns the youngest uop, or nil.
func (r *ROB) Tail() *Uop {
	if r.len == 0 {
		return nil
	}
	return r.buf[(r.head+r.len-1)%len(r.buf)]
}

// PopTail removes and returns the youngest uop (squash path). It panics
// when empty.
func (r *ROB) PopTail() *Uop {
	if r.len == 0 {
		panic("uarch: ROB pop-tail from empty buffer")
	}
	i := (r.head + r.len - 1) % len(r.buf)
	u := r.buf[i]
	r.buf[i] = nil
	r.completed[i] = false
	u.ROBSlot = -1
	r.len--
	return u
}

// ForEach visits uops oldest to youngest.
func (r *ROB) ForEach(f func(*Uop)) {
	for i := 0; i < r.len; i++ {
		f(r.buf[(r.head+i)%len(r.buf)])
	}
}
