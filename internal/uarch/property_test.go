package uarch

import (
	"testing"
	"testing/quick"

	"visasim/internal/isa"
	"visasim/internal/rng"
)

// TestQuickROBMatchesSlice drives the ROB ring and a plain slice with
// identical random push/pop/pop-tail sequences.
func TestQuickROBMatchesSlice(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := NewROB(16)
		var ref []*Uop
		src := rng.New(seed)
		age := uint64(0)
		for i := 0; i < int(n%600)+50; i++ {
			switch src.Intn(3) {
			case 0:
				if r.Full() {
					continue
				}
				u := mkUop(isa.IntALU, age, 0)
				age++
				r.Push(u)
				ref = append(ref, u)
			case 1:
				if r.Empty() {
					continue
				}
				if got := r.Pop(); got != ref[0] {
					return false
				}
				ref = ref[1:]
			default:
				if r.Empty() {
					continue
				}
				if got := r.PopTail(); got != ref[len(ref)-1] {
					return false
				}
				ref = ref[:len(ref)-1]
			}
			if r.Len() != len(ref) {
				return false
			}
			if len(ref) > 0 && (r.Head() != ref[0] || r.Tail() != ref[len(ref)-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIQSlotConsistency: after arbitrary insert/remove sequences, the
// queue's census and per-thread counts match a reference multiset.
func TestQuickIQSlotConsistency(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		q := NewIQ(12)
		src := rng.New(seed)
		var live []*Uop
		perThread := map[int32]int{}
		age := uint64(0)
		for i := 0; i < int(n%600)+50; i++ {
			if src.Bool(0.55) && !q.Full() {
				u := mkUop(isa.IntALU, age, int32(src.Intn(4)))
				age++
				if src.Bool(0.4) {
					u.SrcPending = 1
				}
				q.Insert(u)
				live = append(live, u)
				perThread[u.Thread]++
			} else if len(live) > 0 {
				idx := src.Intn(len(live))
				u := live[idx]
				q.Remove(u)
				live = append(live[:idx], live[idx+1:]...)
				perThread[u.Thread]--
			}
			if q.Len() != len(live) {
				return false
			}
			for tid, want := range perThread {
				if q.ThreadLen(int(tid)) != want {
					return false
				}
			}
			c := q.Census()
			ready := 0
			for _, u := range live {
				if u.Ready() {
					ready++
				}
			}
			if c.Ready != ready || c.Waiting != len(live)-ready {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVISAOrderProperty: for any ready set, the VISA candidate order
// is (tagged before untagged) and age-sorted within each class.
func TestQuickVISAOrderProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		q := NewIQ(64)
		src := rng.New(seed)
		for i := 0; i < int(n%60)+2; i++ {
			u := mkUop(isa.IntALU, src.Uint64()%1000, 0)
			u.ACETag = src.Bool(0.5)
			q.Insert(u)
		}
		cands := q.ReadyCandidates(SchedVISA)
		seenUntagged := false
		var prev *Uop
		for _, slot := range cands {
			u := q.At(int(slot))
			if u == nil {
				return false
			}
			if u.ACETag && seenUntagged {
				return false
			}
			if !u.ACETag {
				seenUntagged = true
			}
			if prev != nil && prev.ACETag == u.ACETag && prev.Age > u.Age {
				return false
			}
			prev = u
		}
		return len(cands) == q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReadyListMatchesReference drives the packed ready list (sorted
// uint64 keys encoding age, ACE tag and slot) and a naive reference model
// with identical random insert/wake/remove sequences: after every operation
// the candidate sets must match the reference exactly, for both schedulers,
// and the internal CheckReady audit must hold.
func TestQuickReadyListMatchesReference(t *testing.T) {
	refOrder := func(ref []*Uop, sched Scheduler) []*Uop {
		out := append([]*Uop(nil), ref...)
		// Insertion sort by the scheduler's order: (ACE-tag desc under
		// VISA) then age ascending — the spec the packed keys implement.
		less := func(a, b *Uop) bool {
			if sched == SchedVISA && a.ACETag != b.ACETag {
				return a.ACETag
			}
			return a.Age < b.Age
		}
		for i := 1; i < len(out); i++ {
			u := out[i]
			j := i
			for j > 0 && less(u, out[j-1]) {
				out[j] = out[j-1]
				j--
			}
			out[j] = u
		}
		return out
	}
	f := func(seed uint64, n uint16, visa bool) bool {
		sched := SchedOldestFirst
		if visa {
			sched = SchedVISA
		}
		q := NewIQ(24)
		src := rng.New(seed)
		var live []*Uop
		age := uint64(0)
		for i := 0; i < int(n%400)+50; i++ {
			switch {
			case src.Bool(0.5) && !q.Full():
				u := mkUop(isa.IntALU, age, int32(src.Intn(4)))
				age++
				u.ACETag = src.Bool(0.4)
				if src.Bool(0.4) {
					u.SrcPending = 1
				}
				q.Insert(u)
				live = append(live, u)
			case src.Bool(0.5):
				// Wake a random waiting uop.
				for _, u := range live {
					if u.SrcPending > 0 {
						u.SrcPending = 0
						q.Wake(u)
						break
					}
				}
			case len(live) > 0:
				idx := src.Intn(len(live))
				u := live[idx]
				q.Remove(u)
				live = append(live[:idx], live[idx+1:]...)
			}
			if err := q.CheckReady(); err != nil {
				t.Logf("CheckReady: %v", err)
				return false
			}
			var ready []*Uop
			for _, u := range live {
				if u.Ready() {
					ready = append(ready, u)
				}
			}
			want := refOrder(ready, sched)
			got := q.ReadyCandidates(sched)
			if len(got) != len(want) {
				return false
			}
			for i, slot := range got {
				if q.At(int(slot)) != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFUNeverOversubscribed: per cycle, accepted issues never exceed
// the unit count for pipelined classes.
func TestQuickFUNeverOversubscribed(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewFUPools([5]int{3, 1, 2, 1, 1})
		src := rng.New(seed)
		for cyc := uint64(0); cyc < 200; cyc++ {
			accepted := map[isa.FUClass]int{}
			tries := src.Intn(10) + 1
			for i := 0; i < tries; i++ {
				kinds := []isa.Kind{isa.IntALU, isa.IntMul, isa.Load, isa.FPALU, isa.FPMul, isa.IntDiv}
				u := mkUop(kinds[src.Intn(len(kinds))], cyc, 0)
				if p.TryIssue(u, cyc) {
					accepted[u.Kind().FU()]++
				}
			}
			for c, n := range accepted {
				if n > p.Units(c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
