// Package uarch provides the microarchitectural building blocks of the SMT
// pipeline: in-flight micro-operations, the shared issue queue with its
// schedulers (baseline oldest-first and the paper's VISA policy), per-thread
// reorder buffers and load/store queues, and function-unit pools.
//
// Package pipeline assembles these into the full processor; keeping them
// here lets each structure be tested in isolation.
package uarch

import (
	"visasim/internal/branch"
	"visasim/internal/isa"
	"visasim/internal/trace"
)

// MaxThreads bounds the number of hardware contexts (the paper evaluates
// 4-context workloads; arrays are sized for headroom).
const MaxThreads = 8

// Stage is a uop's position in its lifecycle.
type Stage uint8

// Lifecycle stages, in order.
const (
	StageFetched   Stage = iota // in a fetch queue, pre-dispatch
	StageInIQ                   // dispatched, waiting or ready in the IQ
	StageIssued                 // executing on a function unit
	StageCompleted              // result available, awaiting commit
	StageCommitted
	StageSquashed
)

func (s Stage) String() string {
	switch s {
	case StageFetched:
		return "fetched"
	case StageInIQ:
		return "in-iq"
	case StageIssued:
		return "issued"
	case StageCompleted:
		return "completed"
	case StageCommitted:
		return "committed"
	default:
		return "squashed"
	}
}

// Uop is one in-flight dynamic instruction.
type Uop struct {
	// Dyn is the dynamic instance (copied by value: wrong-path uops get
	// a synthesised instance, correct-path uops a snapshot of the
	// oracle stream's entry).
	Dyn trace.DynInst

	Thread    int32
	Age       uint64 // global fetch order, the scheduler's age key
	StreamPos uint64 // correct-path oracle position (valid if !WrongPath)

	WrongPath bool
	// ACE is ground-truth ACE-ness: always false for wrong-path uops.
	ACE bool
	// ACETag is the profiled per-PC tag the VISA issue logic reads;
	// wrong-path uops carry their static instruction's tag, since real
	// hardware cannot tell wrong-path instructions apart.
	ACETag bool

	// Branch-prediction state.
	PredTaken    bool
	PredNext     uint64
	Mispredicted bool // prediction diverges from the oracle outcome
	CP           branch.Checkpoint

	// Pipeline state.
	Stage      Stage
	SrcPending int8 // outstanding source operands
	L2Miss     bool // load that went to main memory
	MissedL1   bool // load that missed the L1D
	// PDGPredMiss marks a load the PDG fetch policy predicted to miss.
	PDGPredMiss bool

	IQSlot  int32 // slot index while StageInIQ, else -1
	LSQSlot int32 // slot index while occupying the LSQ, else -1
	ROBSlot int32 // slot index while resident in the ROB, else -1

	// BlockedOn caches the older same-thread store that last blocked this
	// load in LSQ.CheckLoad (generation-stamped, like a dependents entry).
	// While that store remains unissued the disposition provably cannot
	// change, so re-checks skip the LSQ walk. Zero when not known-blocked.
	BlockedOn DepRef

	// PrevWriter is the previous rename-map entry for Dyn.Static.Dest,
	// used to repair the map when this uop is squashed.
	PrevWriter *Uop
	// NextWriter is the inverse link: the younger in-flight writer of
	// the same register whose PrevWriter is this uop, if any. Commit and
	// squash use it to unhook this uop from the rename history before it
	// is recycled.
	NextWriter *Uop

	// Gen counts reincarnations of this allocation (see UopPool): a
	// DepRef whose generation disagrees is a stale registration from a
	// squashed previous life and must be ignored.
	Gen uint64

	// dependents are dispatched consumers waiting on this uop's result.
	dependents []DepRef

	// Timing (absolute cycles).
	FetchedAt    uint64
	DecodeReady  uint64 // earliest dispatch cycle (decode latency)
	DispatchedAt uint64
	ReadyAt      uint64 // cycle the last source operand arrived
	IssuedAt     uint64
	CompleteAt   uint64
}

// Static returns the uop's static instruction.
func (u *Uop) Static() *isa.Inst { return u.Dyn.Static }

// Kind returns the uop's instruction kind.
func (u *Uop) Kind() isa.Kind { return u.Dyn.Static.Kind }

// Ready reports whether all source operands are available.
func (u *Uop) Ready() bool { return u.SrcPending == 0 }

// DepRef is a generation-stamped reference to a dependent uop. With pooled
// uops a producer's dependents list can outlive a squashed consumer whose
// allocation was already reincarnated; the generation detects that.
type DepRef struct {
	U   *Uop
	Gen uint64
}

// Live reports whether the reference still points at the registration-time
// incarnation.
func (r DepRef) Live() bool { return r.U.Gen == r.Gen }

// AddDependent registers d as waiting on this uop's result.
func (u *Uop) AddDependent(d *Uop) { u.dependents = append(u.dependents, DepRef{d, d.Gen}) }

// Dependents returns the registered consumers.
func (u *Uop) Dependents() []DepRef { return u.dependents }

// ClearDependents empties the consumer list (after wakeup), keeping the
// backing array for the allocation's next life.
func (u *Uop) ClearDependents() { u.dependents = u.dependents[:0] }

// Reset returns the uop to its just-allocated state for reuse, advancing
// the generation so stale DepRefs to the previous life are detectable. The
// dependents backing array is retained.
func (u *Uop) Reset() {
	deps := u.dependents[:0]
	gen := u.Gen + 1
	*u = Uop{Gen: gen, IQSlot: -1, LSQSlot: -1, ROBSlot: -1, dependents: deps}
}

// IQResidency returns the cycles this uop spent in the issue queue, given
// the current cycle for still-resident uops.
func (u *Uop) IQResidency(now uint64) uint64 {
	switch {
	case u.Stage == StageInIQ:
		return now - u.DispatchedAt
	case u.IssuedAt >= u.DispatchedAt && u.Stage >= StageIssued && u.Stage != StageSquashed:
		return u.IssuedAt - u.DispatchedAt
	default:
		return 0
	}
}
