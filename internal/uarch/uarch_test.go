package uarch

import (
	"testing"

	"visasim/internal/isa"
	"visasim/internal/trace"
)

func mkUop(kind isa.Kind, age uint64, thread int32) *Uop {
	in := &isa.Inst{Kind: kind, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	return &Uop{
		Dyn:     trace.DynInst{Static: in},
		Thread:  thread,
		Age:     age,
		IQSlot:  -1,
		LSQSlot: -1,
	}
}

func TestIQInsertRemove(t *testing.T) {
	q := NewIQ(4)
	var uops []*Uop
	for i := 0; i < 4; i++ {
		u := mkUop(isa.IntALU, uint64(i), 0)
		q.Insert(u)
		uops = append(uops, u)
	}
	if !q.Full() || q.Len() != 4 {
		t.Fatal("queue should be full")
	}
	if q.ThreadLen(0) != 4 {
		t.Fatalf("thread len %d", q.ThreadLen(0))
	}
	q.Remove(uops[2])
	if q.Len() != 3 || q.Full() {
		t.Fatal("remove did not free a slot")
	}
	// Freed slot is reusable.
	u := mkUop(isa.IntALU, 99, 1)
	q.Insert(u)
	if q.ThreadLen(1) != 1 {
		t.Fatal("per-thread count wrong after reuse")
	}
}

func TestIQInsertFullPanics(t *testing.T) {
	q := NewIQ(1)
	q.Insert(mkUop(isa.IntALU, 0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on full insert")
		}
	}()
	q.Insert(mkUop(isa.IntALU, 1, 0))
}

func TestIQDoubleRemovePanics(t *testing.T) {
	q := NewIQ(2)
	u := mkUop(isa.IntALU, 0, 0)
	q.Insert(u)
	q.Remove(u)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double remove")
		}
	}()
	q.Remove(u)
}

func TestCensus(t *testing.T) {
	q := NewIQ(8)
	ready := mkUop(isa.IntALU, 0, 0)
	ready.ACE, ready.ACETag = true, true
	waiting := mkUop(isa.IntALU, 1, 0)
	waiting.SrcPending = 1
	unace := mkUop(isa.IntALU, 2, 1)
	q.Insert(ready)
	q.Insert(waiting)
	q.Insert(unace)
	c := q.Census()
	if c.Ready != 2 || c.Waiting != 1 {
		t.Fatalf("census ready=%d waiting=%d", c.Ready, c.Waiting)
	}
	if c.ReadyACE != 1 || c.ReadyACETag != 1 {
		t.Fatalf("census ACE counts %d/%d", c.ReadyACE, c.ReadyACETag)
	}
	if c.ResidentACE != 1 {
		t.Fatalf("resident ACE %d", c.ResidentACE)
	}
}

func TestSchedulerOldestFirst(t *testing.T) {
	q := NewIQ(8)
	for _, age := range []uint64{5, 1, 9, 3} {
		q.Insert(mkUop(isa.IntALU, age, 0))
	}
	cands := q.ReadyCandidates(SchedOldestFirst)
	for i := 1; i < len(cands); i++ {
		if q.At(int(cands[i])).Age < q.At(int(cands[i-1])).Age {
			t.Fatal("not age ordered")
		}
	}
}

func TestSchedulerVISA(t *testing.T) {
	q := NewIQ(8)
	mk := func(age uint64, tag bool) *Uop {
		u := mkUop(isa.IntALU, age, 0)
		u.ACETag = tag
		return u
	}
	q.Insert(mk(1, false))
	q.Insert(mk(2, true))
	q.Insert(mk(3, false))
	q.Insert(mk(4, true))
	cands := q.ReadyCandidates(SchedVISA)
	want := []struct {
		age uint64
		tag bool
	}{{2, true}, {4, true}, {1, false}, {3, false}}
	for i, w := range want {
		u := q.At(int(cands[i]))
		if u.Age != w.age || u.ACETag != w.tag {
			t.Fatalf("slot %d: age=%d tag=%v", i, u.Age, u.ACETag)
		}
	}
}

func TestSchedulerSkipsWaiting(t *testing.T) {
	q := NewIQ(4)
	w := mkUop(isa.IntALU, 0, 0)
	w.SrcPending = 2
	q.Insert(w)
	q.Insert(mkUop(isa.IntALU, 1, 0))
	if cands := q.ReadyCandidates(SchedOldestFirst); len(cands) != 1 || q.At(int(cands[0])).Age != 1 {
		t.Fatal("waiting uop in candidate list")
	}
}

func TestROBOrder(t *testing.T) {
	r := NewROB(4)
	for i := 0; i < 3; i++ {
		r.Push(mkUop(isa.IntALU, uint64(i), 0))
	}
	if r.Head().Age != 0 || r.Tail().Age != 2 {
		t.Fatal("head/tail wrong")
	}
	if got := r.Pop().Age; got != 0 {
		t.Fatalf("pop age %d", got)
	}
	if got := r.PopTail().Age; got != 2 {
		t.Fatalf("pop-tail age %d", got)
	}
	if r.Len() != 1 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestROBWraparound(t *testing.T) {
	r := NewROB(3)
	age := uint64(0)
	for round := 0; round < 5; round++ {
		for r.Len() < 3 {
			r.Push(mkUop(isa.IntALU, age, 0))
			age++
		}
		r.Pop()
		r.Pop()
	}
	// Remaining entries must still be ordered.
	prev := uint64(0)
	r.ForEach(func(u *Uop) {
		if u.Age < prev {
			t.Fatal("order broken after wraparound")
		}
		prev = u.Age
	})
}

func TestLSQDispositions(t *testing.T) {
	l := NewLSQ(8)
	st := mkUop(isa.Store, 0, 0)
	st.Dyn.Addr = 0x100
	ld := mkUop(isa.Load, 1, 0)
	ld.Dyn.Addr = 0x100
	l.Push(st)
	l.Push(ld)

	// Store address unknown: load blocked.
	if got := l.CheckLoad(ld); got != LoadBlocked {
		t.Fatalf("disposition %v, want blocked", got)
	}
	// Store issued, same word: forward.
	st.Stage = StageIssued
	if got := l.CheckLoad(ld); got != LoadForward {
		t.Fatalf("disposition %v, want forward", got)
	}
	// Different word: go to cache.
	ld.Dyn.Addr = 0x200
	if got := l.CheckLoad(ld); got != LoadGo {
		t.Fatalf("disposition %v, want go", got)
	}
}

func TestLSQNoOlderStores(t *testing.T) {
	l := NewLSQ(4)
	ld := mkUop(isa.Load, 0, 0)
	ld.Dyn.Addr = 0x100
	l.Push(ld)
	if got := l.CheckLoad(ld); got != LoadGo {
		t.Fatalf("lone load disposition %v", got)
	}
}

func TestLSQRemoveEnds(t *testing.T) {
	l := NewLSQ(4)
	a := mkUop(isa.Load, 0, 0)
	b := mkUop(isa.Store, 1, 0)
	c := mkUop(isa.Load, 2, 0)
	l.Push(a)
	l.Push(b)
	l.Push(c)
	l.Remove(c) // tail (squash order)
	l.Remove(a) // head (commit order)
	if l.Len() != 1 {
		t.Fatalf("len %d", l.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double-remove must panic")
		}
	}()
	l.Remove(c)
}

func TestFUPipelined(t *testing.T) {
	p := NewFUPools([5]int{1, 1, 1, 1, 1})
	a := mkUop(isa.IntALU, 0, 0)
	b := mkUop(isa.IntALU, 1, 0)
	if !p.TryIssue(a, 10) {
		t.Fatal("first issue failed")
	}
	if p.TryIssue(b, 10) {
		t.Fatal("second issue same cycle on one unit")
	}
	if !p.TryIssue(b, 11) {
		t.Fatal("pipelined unit must accept next cycle")
	}
}

func TestFUDivBlocks(t *testing.T) {
	p := NewFUPools([5]int{1, 1, 1, 1, 1})
	d := mkUop(isa.IntDiv, 0, 0)
	if !p.TryIssue(d, 10) {
		t.Fatal("divide issue failed")
	}
	d2 := mkUop(isa.IntDiv, 1, 0)
	if p.TryIssue(d2, 11) {
		t.Fatal("non-pipelined divide accepted during busy window")
	}
	if !p.TryIssue(d2, 10+uint64(isa.IntDiv.Latency())) {
		t.Fatal("divide unit not freed after latency")
	}
}

func TestFUBusyAccounting(t *testing.T) {
	p := NewFUPools([5]int{2, 1, 1, 1, 1})
	u := mkUop(isa.IntALU, 0, 0)
	u.ACE = true
	p.TryIssue(u, 1)
	if p.BusyCycles[isa.FUIntALU] != 1 || p.BusyCyclesACE[isa.FUIntALU] != 1 {
		t.Fatal("busy accounting wrong")
	}
	if p.TotalUnits() != 6 {
		t.Fatalf("total units %d", p.TotalUnits())
	}
}

func TestUopResidency(t *testing.T) {
	u := mkUop(isa.IntALU, 0, 0)
	u.DispatchedAt = 10
	u.Stage = StageInIQ
	if got := u.IQResidency(25); got != 15 {
		t.Fatalf("in-IQ residency %d", got)
	}
	u.Stage = StageIssued
	u.IssuedAt = 22
	if got := u.IQResidency(99); got != 12 {
		t.Fatalf("issued residency %d", got)
	}
	u.Stage = StageSquashed
	if got := u.IQResidency(99); got != 0 {
		t.Fatalf("squashed residency %d", got)
	}
}
