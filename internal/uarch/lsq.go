package uarch

import "visasim/internal/isa"

// LSQ is one thread's load/store queue, holding memory uops in program
// order. It provides the memory-dependence discipline the issue stage
// enforces:
//
//   - a load may not issue while any older store's address is unknown
//     (no memory-dependence speculation, as in the baseline M-Sim model);
//   - a load whose address matches an older resolved store forwards from it
//     (one-cycle completion) instead of accessing the cache.
type LSQ struct {
	buf  []*Uop
	head int
	len  int
}

// NewLSQ returns a load/store queue with size entries.
func NewLSQ(size int) *LSQ {
	return &LSQ{buf: make([]*Uop, size)}
}

// Size returns the capacity.
func (l *LSQ) Size() int { return len(l.buf) }

// Len returns the occupancy.
func (l *LSQ) Len() int { return l.len }

// Full reports whether no entry is free.
func (l *LSQ) Full() bool { return l.len == len(l.buf) }

// Push appends u (a load or store) at the tail and records its slot.
func (l *LSQ) Push(u *Uop) {
	if l.Full() {
		panic("uarch: LSQ push into full queue")
	}
	slot := (l.head + l.len) % len(l.buf)
	l.buf[slot] = u
	u.LSQSlot = int32(slot)
	l.len++
}

// Remove drops u. Commit removes from the head; squash removes from the
// tail; both are O(1). Removal from the middle is a bug.
func (l *LSQ) Remove(u *Uop) {
	if u.LSQSlot < 0 || l.buf[u.LSQSlot] != u {
		panic("uarch: LSQ remove of non-resident uop")
	}
	switch int(u.LSQSlot) {
	case l.head:
		l.buf[l.head] = nil
		l.head = (l.head + 1) % len(l.buf)
	case (l.head + l.len - 1) % len(l.buf):
		l.buf[u.LSQSlot] = nil
	default:
		panic("uarch: LSQ remove from middle")
	}
	u.LSQSlot = -1
	l.len--
}

// LoadDisposition classifies whether a ready load may issue.
type LoadDisposition uint8

// Load dispositions.
const (
	// LoadGo: no older-store conflict; access the cache.
	LoadGo LoadDisposition = iota
	// LoadForward: an older resolved store to the same word supplies
	// the value; complete without a cache access.
	LoadForward
	// LoadBlocked: an older store's address is still unknown; the load
	// must wait.
	LoadBlocked
)

// CheckLoad determines disposition for load u against its older stores.
// Newest-matching-store wins for forwarding.
//
// A blocked load stays in the ready list and is re-checked every cycle, so
// the blocking store found by one walk is cached on the load: while that
// store remains unissued the walk would return LoadBlocked again — every
// store between the load and the blocker had already issued with a
// non-matching (and fixed, since addresses come from the oracle stream)
// address, later pushes are younger than the load, and a squash that removes
// the blocker necessarily removed the younger load first. The generation
// stamp detects the blocker's allocation being recycled.
func (l *LSQ) CheckLoad(u *Uop) LoadDisposition {
	if b := u.BlockedOn.U; b != nil {
		if u.BlockedOn.Live() && b.Stage < StageIssued {
			return LoadBlocked
		}
		u.BlockedOn = DepRef{}
	}
	word := u.Dyn.Addr &^ 7
	// Walk from u's slot backwards to the head.
	idx := int(u.LSQSlot)
	for idx != l.head {
		if idx == 0 {
			idx = len(l.buf)
		}
		idx--
		s := l.buf[idx]
		if s == nil || s.Kind() != isa.Store {
			continue
		}
		if s.Stage < StageIssued {
			// Address not yet computed: conservative block.
			u.BlockedOn = DepRef{U: s, Gen: s.Gen}
			return LoadBlocked
		}
		if s.Dyn.Addr&^7 == word {
			return LoadForward
		}
	}
	return LoadGo
}

// ForEach visits uops oldest to youngest.
func (l *LSQ) ForEach(f func(*Uop)) {
	for i := 0; i < l.len; i++ {
		f(l.buf[(l.head+i)%len(l.buf)])
	}
}
