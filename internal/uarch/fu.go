package uarch

import "visasim/internal/isa"

// FUPools models the function-unit complement of Table 2. ALU-class units
// are fully pipelined (a unit accepts a new operation every cycle); divide
// units block for the operation's full latency.
type FUPools struct {
	// freeAt[c] holds, per unit of class c, the first cycle the unit
	// can accept a new operation.
	freeAt [isa.NumFUClasses][]uint64

	// Busy-cycle accounting for utilisation stats and FU AVF.
	BusyCycles    [isa.NumFUClasses]uint64
	BusyCyclesACE [isa.NumFUClasses]uint64
}

// NewFUPools builds pools with counts[c] units per class.
func NewFUPools(counts [int(isa.NumFUClasses)]int) *FUPools {
	p := &FUPools{}
	for c := range counts {
		p.freeAt[c] = make([]uint64, counts[c])
	}
	return p
}

// pipelined reports whether kind k's unit accepts a new op next cycle.
func pipelined(k isa.Kind) bool { return k != isa.IntDiv && k != isa.FPDiv }

// TryIssue claims a unit of u's class at cycle now. It returns false when
// every unit of the class is occupied this cycle.
func (p *FUPools) TryIssue(u *Uop, now uint64) bool {
	class := u.Kind().FU()
	units := p.freeAt[class]
	for i := range units {
		if units[i] <= now {
			lat := uint64(u.Kind().Latency())
			if pipelined(u.Kind()) {
				units[i] = now + 1
			} else {
				units[i] = now + lat
			}
			p.BusyCycles[class] += lat
			if u.ACE {
				p.BusyCyclesACE[class] += lat
			}
			return true
		}
	}
	return false
}

// Units returns the unit count of class c.
func (p *FUPools) Units(c isa.FUClass) int { return len(p.freeAt[c]) }

// TotalUnits returns the total unit count.
func (p *FUPools) TotalUnits() int {
	n := 0
	for c := range p.freeAt {
		n += len(p.freeAt[c])
	}
	return n
}
