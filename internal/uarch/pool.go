package uarch

// UopPool is a free list of Uop allocations. The pipeline allocates several
// uops per simulated cycle; recycling them caps steady-state allocation at
// the in-flight population (machine size) instead of growing with simulated
// instructions, which removes the allocator and collector from the cycle
// loop's hot path.
//
// Safety protocol (enforced by the pipeline, validated by CheckInvariants):
// a uop may be Put only when no machine structure can reach it again — after
// commit, after a never-issued squash, or, for squashed in-flight uops, when
// their completion-wheel slot fires. References that can survive past that
// point (a producer's dependents list) carry the generation stamp DepRef
// checks against.
type UopPool struct {
	free []*Uop
}

// Get returns a fresh uop: zeroed fields, queue slots unset, generation
// advanced past any previous life.
func (p *UopPool) Get() *Uop {
	if n := len(p.free); n > 0 {
		u := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return u
	}
	return &Uop{IQSlot: -1, LSQSlot: -1, ROBSlot: -1}
}

// Put resets u and returns it to the pool. The caller must guarantee no
// structure still reaches u except generation-stamped DepRefs.
func (p *UopPool) Put(u *Uop) {
	u.Reset()
	p.free = append(p.free, u)
}

// Len returns the number of pooled free uops (testing aid).
func (p *UopPool) Len() int { return len(p.free) }
