package uarch

import "sort"

// Scheduler selects which ready instructions issue each cycle.
type Scheduler uint8

// Issue scheduling policies.
const (
	// SchedOldestFirst is the conventional baseline: ready instructions
	// issue oldest (fetch order) first, regardless of vulnerability.
	SchedOldestFirst Scheduler = iota
	// SchedVISA is the paper's Vulnerable-InStruction-Aware policy:
	// ready ACE-tagged instructions bypass all ready un-ACE-tagged
	// instructions; within each class, issue proceeds in program
	// (age) order. Un-ACE instructions fill whatever issue slots the
	// ACE instructions leave free.
	SchedVISA
)

func (s Scheduler) String() string {
	if s == SchedVISA {
		return "visa"
	}
	return "oldest-first"
}

// IQ is the shared issue queue: a fixed pool of slots holding dispatched,
// not-yet-issued uops from all threads. The "ready queue" and "waiting
// queue" of the paper are views over these slots (ready = all operands
// available).
type IQ struct {
	slots []*Uop
	free  []int32 // free-slot stack
	count int

	perThread [MaxThreads]int

	// candidates is the reusable per-cycle ready list.
	candidates []*Uop
}

// NewIQ returns an issue queue with size slots.
func NewIQ(size int) *IQ {
	q := &IQ{
		slots:      make([]*Uop, size),
		free:       make([]int32, size),
		candidates: make([]*Uop, 0, size),
	}
	for i := range q.free {
		q.free[i] = int32(size - 1 - i)
	}
	return q
}

// Size returns the queue capacity.
func (q *IQ) Size() int { return len(q.slots) }

// Len returns the current occupancy.
func (q *IQ) Len() int { return q.count }

// ThreadLen returns the occupancy contributed by thread t.
func (q *IQ) ThreadLen(t int) int { return q.perThread[t] }

// Full reports whether no slot is free.
func (q *IQ) Full() bool { return q.count == len(q.slots) }

// Insert places u into a free slot. It panics if the queue is full or the
// uop is already resident — callers gate on Full().
func (q *IQ) Insert(u *Uop) {
	if q.count == len(q.slots) {
		panic("uarch: IQ insert into full queue")
	}
	if u.IQSlot >= 0 {
		panic("uarch: IQ double insert")
	}
	slot := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	q.slots[slot] = u
	u.IQSlot = slot
	u.Stage = StageInIQ
	q.count++
	q.perThread[u.Thread]++
}

// Remove frees u's slot (on issue or squash).
func (q *IQ) Remove(u *Uop) {
	if u.IQSlot < 0 || q.slots[u.IQSlot] != u {
		panic("uarch: IQ remove of non-resident uop")
	}
	q.free = append(q.free, u.IQSlot)
	q.slots[u.IQSlot] = nil
	u.IQSlot = -1
	q.count--
	q.perThread[u.Thread]--
}

// Census counts resident uops: ready vs waiting, and how many of the ready
// ones are ACE (by ground truth and by tag). This is the paper's
// ready-queue/waiting-queue instrumentation (Figure 2) and feeds the
// dynamic resource allocation and DVM mechanisms.
type Census struct {
	Ready        int
	Waiting      int
	ReadyACE     int // ground truth
	ReadyACETag  int
	ResidentACE  int // ground truth, whole IQ
	ResidentTags int
}

// Census scans the queue.
func (q *IQ) Census() Census {
	var c Census
	for _, u := range q.slots {
		if u == nil {
			continue
		}
		if u.Ready() {
			c.Ready++
			if u.ACE {
				c.ReadyACE++
			}
			if u.ACETag {
				c.ReadyACETag++
			}
		} else {
			c.Waiting++
		}
		if u.ACE {
			c.ResidentACE++
		}
		if u.ACETag {
			c.ResidentTags++
		}
	}
	return c
}

// ReadyCandidates fills the scheduler's per-cycle candidate list with all
// ready resident uops ordered per policy. The returned slice is reused
// across calls.
func (q *IQ) ReadyCandidates(sched Scheduler) []*Uop {
	cands := q.candidates[:0]
	for _, u := range q.slots {
		if u != nil && u.Ready() {
			cands = append(cands, u)
		}
	}
	switch sched {
	case SchedVISA:
		sort.Slice(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if a.ACETag != b.ACETag {
				return a.ACETag // ACE-tagged first
			}
			return a.Age < b.Age
		})
	default:
		sort.Slice(cands, func(i, j int) bool {
			return cands[i].Age < cands[j].Age
		})
	}
	q.candidates = cands
	return cands
}

// ForEach visits every resident uop.
func (q *IQ) ForEach(f func(*Uop)) {
	for _, u := range q.slots {
		if u != nil {
			f(u)
		}
	}
}

// At returns the uop in slot i, or nil if the slot is free. Fault-injection
// campaigns use it to strike a uniformly random entry.
func (q *IQ) At(i int) *Uop { return q.slots[i] }
