package uarch

import "fmt"

// Scheduler selects which ready instructions issue each cycle.
type Scheduler uint8

// Issue scheduling policies.
const (
	// SchedOldestFirst is the conventional baseline: ready instructions
	// issue oldest (fetch order) first, regardless of vulnerability.
	SchedOldestFirst Scheduler = iota
	// SchedVISA is the paper's Vulnerable-InStruction-Aware policy:
	// ready ACE-tagged instructions bypass all ready un-ACE-tagged
	// instructions; within each class, issue proceeds in program
	// (age) order. Un-ACE instructions fill whatever issue slots the
	// ACE instructions leave free.
	SchedVISA
)

func (s Scheduler) String() string {
	if s == SchedVISA {
		return "visa"
	}
	return "oldest-first"
}

// Packed ready-key layout. The ready list is struct-of-arrays state: one
// uint64 per ready resident packing (age, ACE tag, slot), ordered so a plain
// integer comparison reproduces age order. Schedulers and the binary
// insert/remove walk this dense slice without dereferencing a single *Uop —
// the age lives in the key, the tag bit drives VISA's partition, and the low
// bits recover the slot index.
const (
	// readySlotBits bounds the queue size representable in a packed key.
	readySlotBits = 10
	// MaxIQSlots is the largest issue-queue capacity the packed ready
	// list supports (1024 — far above any modeled configuration).
	MaxIQSlots    = 1 << readySlotBits
	readySlotMask = MaxIQSlots - 1
	readyTagBit   = uint64(1) << readySlotBits
	readyAgeShift = readySlotBits + 1
)

// readyKey packs u into its ready-list key. The tag bit sits below the age,
// so ordering is (age, tag, slot) — identical to pure age order whenever
// ages are unique, which the pipeline guarantees.
func readyKey(u *Uop) uint64 {
	k := u.Age<<readyAgeShift | uint64(u.IQSlot)
	if u.ACETag {
		k |= readyTagBit
	}
	return k
}

// IQ is the shared issue queue: a fixed pool of slots holding dispatched,
// not-yet-issued uops from all threads. The "ready queue" and "waiting
// queue" of the paper are views over these slots (ready = all operands
// available).
type IQ struct {
	slots []*Uop
	free  []int32 // free-slot stack
	count int

	perThread [MaxThreads]int

	// cen is maintained incrementally on Insert/Remove/Wake so Census is
	// O(1); CensusWalk recomputes it from the slots for cross-checking.
	cen Census
	// ready holds one packed key (see readyKey) per ready resident in
	// ascending key order: schedulers read it without scanning, sorting
	// or pointer-chasing. Entries with equal ages (possible only outside
	// the pipeline, whose ages are unique) order by (tag, slot).
	//
	// Storage is a ring deque (power-of-two capacity, rHead/rLen window)
	// rather than a shifted slice because the pipeline's access pattern is
	// end-biased: ages increase monotonically, so a newly ready uop almost
	// always carries the largest key (O(1) tail append), and oldest-first
	// issue drains the smallest keys (O(1) head pop). Mid-list operations
	// shift whichever side is shorter.
	ready []uint64
	rMask int // len(ready)-1, a power-of-two mask
	rHead int // physical index of the logically first (smallest) key
	rLen  int // live keys

	// candidates is the reusable per-cycle ready list of slot indices.
	candidates []int32

	// highWater is the largest occupancy seen since the last
	// ResetHighWater — cheap per-stage telemetry (deterministic, so it
	// travels in Results without disturbing golden comparisons).
	highWater int
}

// NewIQ returns an issue queue with size slots.
func NewIQ(size int) *IQ {
	if size > MaxIQSlots {
		panic(fmt.Sprintf("uarch: IQ size %d exceeds %d packed-key slots", size, MaxIQSlots))
	}
	rcap := 1
	for rcap < size {
		rcap <<= 1
	}
	q := &IQ{
		slots:      make([]*Uop, size),
		free:       make([]int32, size),
		ready:      make([]uint64, rcap),
		rMask:      rcap - 1,
		candidates: make([]int32, 0, size),
	}
	for i := range q.free {
		q.free[i] = int32(size - 1 - i)
	}
	return q
}

// Size returns the queue capacity.
func (q *IQ) Size() int { return len(q.slots) }

// Len returns the current occupancy.
func (q *IQ) Len() int { return q.count }

// ThreadLen returns the occupancy contributed by thread t.
func (q *IQ) ThreadLen(t int) int { return q.perThread[t] }

// Full reports whether no slot is free.
func (q *IQ) Full() bool { return q.count == len(q.slots) }

// HighWater returns the largest occupancy seen since the last
// ResetHighWater (or construction).
func (q *IQ) HighWater() int { return q.highWater }

// ResetHighWater restarts high-water tracking from the current occupancy —
// the pipeline calls it when statistics reset after warmup.
func (q *IQ) ResetHighWater() { q.highWater = q.count }

// Insert places u into a free slot. It panics if the queue is full or the
// uop is already resident — callers gate on Full().
func (q *IQ) Insert(u *Uop) {
	if q.count == len(q.slots) {
		panic("uarch: IQ insert into full queue")
	}
	if u.IQSlot >= 0 {
		panic("uarch: IQ double insert")
	}
	slot := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	q.slots[slot] = u
	u.IQSlot = slot
	u.Stage = StageInIQ
	q.count++
	if q.count > q.highWater {
		q.highWater = q.count
	}
	q.perThread[u.Thread]++
	if u.ACE {
		q.cen.ResidentACE++
	}
	if u.ACETag {
		q.cen.ResidentTags++
	}
	if u.Ready() {
		q.readyAdd(u)
	} else {
		q.cen.Waiting++
	}
}

// Remove frees u's slot (on issue or squash).
func (q *IQ) Remove(u *Uop) {
	if u.IQSlot < 0 || q.slots[u.IQSlot] != u {
		panic("uarch: IQ remove of non-resident uop")
	}
	// The packed ready key encodes the slot, so drop the ready entry
	// before the slot is released.
	if u.Ready() {
		q.readyRemove(u)
	} else {
		q.cen.Waiting--
	}
	q.free = append(q.free, u.IQSlot)
	q.slots[u.IQSlot] = nil
	u.IQSlot = -1
	q.count--
	q.perThread[u.Thread]--
	if u.ACE {
		q.cen.ResidentACE--
	}
	if u.ACETag {
		q.cen.ResidentTags--
	}
}

// Wake moves a resident uop from the waiting to the ready set. The pipeline
// calls it exactly once per uop, when writeback clears its last outstanding
// source operand.
func (q *IQ) Wake(u *Uop) {
	if u.IQSlot < 0 || q.slots[u.IQSlot] != u {
		panic("uarch: IQ wake of non-resident uop")
	}
	q.cen.Waiting--
	q.readyAdd(u)
}

// readyAt returns the key at logical position i (0 = smallest).
func (q *IQ) readyAt(i int) uint64 { return q.ready[(q.rHead+i)&q.rMask] }

// readySearch returns the logical position of the first key >= k.
func (q *IQ) readySearch(k uint64) int {
	lo, hi := 0, q.rLen
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.readyAt(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// readyAdd inserts u's packed key into the ordered ready list and counts it.
// The pipeline's monotone ages make the tail append the overwhelmingly
// common case; a mid-list insert shifts whichever side is shorter.
func (q *IQ) readyAdd(u *Uop) {
	q.cen.Ready++
	if u.ACE {
		q.cen.ReadyACE++
	}
	if u.ACETag {
		q.cen.ReadyACETag++
	}
	k := readyKey(u)
	lo := q.rLen
	if lo > 0 && q.readyAt(lo-1) > k {
		lo = q.readySearch(k)
	}
	if 2*lo < q.rLen {
		q.rHead = (q.rHead - 1) & q.rMask
		q.rLen++
		for i := 0; i < lo; i++ {
			q.ready[(q.rHead+i)&q.rMask] = q.ready[(q.rHead+i+1)&q.rMask]
		}
	} else {
		q.rLen++
		for i := q.rLen - 1; i > lo; i-- {
			q.ready[(q.rHead+i)&q.rMask] = q.ready[(q.rHead+i-1)&q.rMask]
		}
	}
	q.ready[(q.rHead+lo)&q.rMask] = k
}

// readyRemove drops u's packed key from the ready list and uncounts it.
// Keys are unique (the slot is part of the key), so the binary search lands
// exactly. Oldest-first issue drains the head, which pops in O(1).
func (q *IQ) readyRemove(u *Uop) {
	q.cen.Ready--
	if u.ACE {
		q.cen.ReadyACE--
	}
	if u.ACETag {
		q.cen.ReadyACETag--
	}
	k := readyKey(u)
	lo := q.readySearch(k)
	if lo >= q.rLen || q.readyAt(lo) != k {
		panic("uarch: IQ ready-list remove of absent uop")
	}
	if 2*lo < q.rLen {
		for i := lo; i > 0; i-- {
			q.ready[(q.rHead+i)&q.rMask] = q.ready[(q.rHead+i-1)&q.rMask]
		}
		q.rHead = (q.rHead + 1) & q.rMask
	} else {
		for i := lo; i < q.rLen-1; i++ {
			q.ready[(q.rHead+i)&q.rMask] = q.ready[(q.rHead+i+1)&q.rMask]
		}
	}
	q.rLen--
}

// Census counts resident uops: ready vs waiting, and how many of the ready
// ones are ACE (by ground truth and by tag). This is the paper's
// ready-queue/waiting-queue instrumentation (Figure 2) and feeds the
// dynamic resource allocation and DVM mechanisms.
type Census struct {
	Ready        int
	Waiting      int
	ReadyACE     int // ground truth
	ReadyACETag  int
	ResidentACE  int // ground truth, whole IQ
	ResidentTags int
}

// Census returns the incrementally maintained counts in O(1).
func (q *IQ) Census() Census { return q.cen }

// CensusWalk recomputes the census with a full O(size) scan of the slots.
// It exists to validate the incremental counters (CheckInvariants); the
// simulation itself reads Census.
func (q *IQ) CensusWalk() Census {
	var c Census
	for _, u := range q.slots {
		if u == nil {
			continue
		}
		if u.Ready() {
			c.Ready++
			if u.ACE {
				c.ReadyACE++
			}
			if u.ACETag {
				c.ReadyACETag++
			}
		} else {
			c.Waiting++
		}
		if u.ACE {
			c.ResidentACE++
		}
		if u.ACETag {
			c.ResidentTags++
		}
	}
	return c
}

// CheckReady validates the ready list against the slots: every ready
// resident appears exactly once, in ascending key (age) order, and every
// packed key reproduces its uop's age, tag and slot (testing aid).
func (q *IQ) CheckReady() error {
	want := 0
	for _, u := range q.slots {
		if u != nil && u.Ready() {
			want++
		}
	}
	if want != q.rLen {
		return fmt.Errorf("uarch: ready list holds %d uops, walk finds %d", q.rLen, want)
	}
	for i := 0; i < q.rLen; i++ {
		k := q.readyAt(i)
		slot := int32(k & readySlotMask)
		u := q.slots[slot]
		if u == nil || u.IQSlot != slot || !u.Ready() {
			return fmt.Errorf("uarch: ready list entry %d is not a ready resident", i)
		}
		if k != readyKey(u) {
			return fmt.Errorf("uarch: ready list entry %d key %#x does not match uop key %#x", i, k, readyKey(u))
		}
		if i > 0 && q.readyAt(i-1) > k {
			return fmt.Errorf("uarch: ready list out of age order at %d", i)
		}
	}
	return nil
}

// ReadyCandidates fills the scheduler's per-cycle candidate list with the
// slot indices of all ready resident uops ordered per policy. The returned
// slice is reused across calls; resolve an index with At only when the
// candidate is actually considered.
//
// The packed ready list is already in ascending age order, so the
// oldest-first policy is a copy and VISA is a stable partition by the ACE
// tag bit carried in each key — both reproduce the ordering a (unique-key)
// sort of the ready set would, without touching a single uop.
func (q *IQ) ReadyCandidates(sched Scheduler) []int32 {
	cands := q.candidates[:0]
	switch sched {
	case SchedVISA:
		for i := 0; i < q.rLen; i++ {
			if k := q.readyAt(i); k&readyTagBit != 0 {
				cands = append(cands, int32(k&readySlotMask))
			}
		}
		for i := 0; i < q.rLen; i++ {
			if k := q.readyAt(i); k&readyTagBit == 0 {
				cands = append(cands, int32(k&readySlotMask))
			}
		}
	default:
		for i := 0; i < q.rLen; i++ {
			cands = append(cands, int32(q.readyAt(i)&readySlotMask))
		}
	}
	q.candidates = cands
	return cands
}

// ForEach visits every resident uop.
func (q *IQ) ForEach(f func(*Uop)) {
	for _, u := range q.slots {
		if u != nil {
			f(u)
		}
	}
}

// At returns the uop in slot i, or nil if the slot is free. Fault-injection
// campaigns use it to strike a uniformly random entry.
func (q *IQ) At(i int) *Uop { return q.slots[i] }
