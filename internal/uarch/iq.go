package uarch

import "fmt"

// Scheduler selects which ready instructions issue each cycle.
type Scheduler uint8

// Issue scheduling policies.
const (
	// SchedOldestFirst is the conventional baseline: ready instructions
	// issue oldest (fetch order) first, regardless of vulnerability.
	SchedOldestFirst Scheduler = iota
	// SchedVISA is the paper's Vulnerable-InStruction-Aware policy:
	// ready ACE-tagged instructions bypass all ready un-ACE-tagged
	// instructions; within each class, issue proceeds in program
	// (age) order. Un-ACE instructions fill whatever issue slots the
	// ACE instructions leave free.
	SchedVISA
)

func (s Scheduler) String() string {
	if s == SchedVISA {
		return "visa"
	}
	return "oldest-first"
}

// IQ is the shared issue queue: a fixed pool of slots holding dispatched,
// not-yet-issued uops from all threads. The "ready queue" and "waiting
// queue" of the paper are views over these slots (ready = all operands
// available).
type IQ struct {
	slots []*Uop
	free  []int32 // free-slot stack
	count int

	perThread [MaxThreads]int

	// cen is maintained incrementally on Insert/Remove/Wake so Census is
	// O(1); CensusWalk recomputes it from the slots for cross-checking.
	cen Census
	// ready holds the ready residents in ascending Age order, maintained
	// by binary insertion: schedulers read it without scanning or
	// sorting. Entries with equal ages (possible only outside the
	// pipeline, whose ages are unique) keep no defined relative order.
	ready []*Uop

	// candidates is the reusable per-cycle ready list.
	candidates []*Uop

	// highWater is the largest occupancy seen since the last
	// ResetHighWater — cheap per-stage telemetry (deterministic, so it
	// travels in Results without disturbing golden comparisons).
	highWater int
}

// NewIQ returns an issue queue with size slots.
func NewIQ(size int) *IQ {
	q := &IQ{
		slots:      make([]*Uop, size),
		free:       make([]int32, size),
		ready:      make([]*Uop, 0, size),
		candidates: make([]*Uop, 0, size),
	}
	for i := range q.free {
		q.free[i] = int32(size - 1 - i)
	}
	return q
}

// Size returns the queue capacity.
func (q *IQ) Size() int { return len(q.slots) }

// Len returns the current occupancy.
func (q *IQ) Len() int { return q.count }

// ThreadLen returns the occupancy contributed by thread t.
func (q *IQ) ThreadLen(t int) int { return q.perThread[t] }

// Full reports whether no slot is free.
func (q *IQ) Full() bool { return q.count == len(q.slots) }

// HighWater returns the largest occupancy seen since the last
// ResetHighWater (or construction).
func (q *IQ) HighWater() int { return q.highWater }

// ResetHighWater restarts high-water tracking from the current occupancy —
// the pipeline calls it when statistics reset after warmup.
func (q *IQ) ResetHighWater() { q.highWater = q.count }

// Insert places u into a free slot. It panics if the queue is full or the
// uop is already resident — callers gate on Full().
func (q *IQ) Insert(u *Uop) {
	if q.count == len(q.slots) {
		panic("uarch: IQ insert into full queue")
	}
	if u.IQSlot >= 0 {
		panic("uarch: IQ double insert")
	}
	slot := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	q.slots[slot] = u
	u.IQSlot = slot
	u.Stage = StageInIQ
	q.count++
	if q.count > q.highWater {
		q.highWater = q.count
	}
	q.perThread[u.Thread]++
	if u.ACE {
		q.cen.ResidentACE++
	}
	if u.ACETag {
		q.cen.ResidentTags++
	}
	if u.Ready() {
		q.readyAdd(u)
	} else {
		q.cen.Waiting++
	}
}

// Remove frees u's slot (on issue or squash).
func (q *IQ) Remove(u *Uop) {
	if u.IQSlot < 0 || q.slots[u.IQSlot] != u {
		panic("uarch: IQ remove of non-resident uop")
	}
	q.free = append(q.free, u.IQSlot)
	q.slots[u.IQSlot] = nil
	u.IQSlot = -1
	q.count--
	q.perThread[u.Thread]--
	if u.ACE {
		q.cen.ResidentACE--
	}
	if u.ACETag {
		q.cen.ResidentTags--
	}
	if u.Ready() {
		q.readyRemove(u)
	} else {
		q.cen.Waiting--
	}
}

// Wake moves a resident uop from the waiting to the ready set. The pipeline
// calls it exactly once per uop, when writeback clears its last outstanding
// source operand.
func (q *IQ) Wake(u *Uop) {
	if u.IQSlot < 0 || q.slots[u.IQSlot] != u {
		panic("uarch: IQ wake of non-resident uop")
	}
	q.cen.Waiting--
	q.readyAdd(u)
}

// readyAdd inserts u into the age-ordered ready list and counts it.
func (q *IQ) readyAdd(u *Uop) {
	q.cen.Ready++
	if u.ACE {
		q.cen.ReadyACE++
	}
	if u.ACETag {
		q.cen.ReadyACETag++
	}
	lo, hi := 0, len(q.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.ready[mid].Age < u.Age {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.ready = append(q.ready, nil)
	copy(q.ready[lo+1:], q.ready[lo:])
	q.ready[lo] = u
}

// readyRemove drops u from the ready list and uncounts it.
func (q *IQ) readyRemove(u *Uop) {
	q.cen.Ready--
	if u.ACE {
		q.cen.ReadyACE--
	}
	if u.ACETag {
		q.cen.ReadyACETag--
	}
	lo, hi := 0, len(q.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.ready[mid].Age < u.Age {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Equal ages are possible in unit tests; scan the equal-age run for
	// the identity match.
	for ; lo < len(q.ready); lo++ {
		if q.ready[lo] == u {
			copy(q.ready[lo:], q.ready[lo+1:])
			q.ready = q.ready[:len(q.ready)-1]
			return
		}
		if q.ready[lo].Age != u.Age {
			break
		}
	}
	panic("uarch: IQ ready-list remove of absent uop")
}

// Census counts resident uops: ready vs waiting, and how many of the ready
// ones are ACE (by ground truth and by tag). This is the paper's
// ready-queue/waiting-queue instrumentation (Figure 2) and feeds the
// dynamic resource allocation and DVM mechanisms.
type Census struct {
	Ready        int
	Waiting      int
	ReadyACE     int // ground truth
	ReadyACETag  int
	ResidentACE  int // ground truth, whole IQ
	ResidentTags int
}

// Census returns the incrementally maintained counts in O(1).
func (q *IQ) Census() Census { return q.cen }

// CensusWalk recomputes the census with a full O(size) scan of the slots.
// It exists to validate the incremental counters (CheckInvariants); the
// simulation itself reads Census.
func (q *IQ) CensusWalk() Census {
	var c Census
	for _, u := range q.slots {
		if u == nil {
			continue
		}
		if u.Ready() {
			c.Ready++
			if u.ACE {
				c.ReadyACE++
			}
			if u.ACETag {
				c.ReadyACETag++
			}
		} else {
			c.Waiting++
		}
		if u.ACE {
			c.ResidentACE++
		}
		if u.ACETag {
			c.ResidentTags++
		}
	}
	return c
}

// CheckReady validates the ready list against the slots: every ready
// resident appears exactly once, in ascending age order (testing aid).
func (q *IQ) CheckReady() error {
	want := 0
	for _, u := range q.slots {
		if u != nil && u.Ready() {
			want++
		}
	}
	if want != len(q.ready) {
		return fmt.Errorf("uarch: ready list holds %d uops, walk finds %d", len(q.ready), want)
	}
	for i, u := range q.ready {
		if u.IQSlot < 0 || q.slots[u.IQSlot] != u || !u.Ready() {
			return fmt.Errorf("uarch: ready list entry %d is not a ready resident", i)
		}
		if i > 0 && q.ready[i-1].Age > u.Age {
			return fmt.Errorf("uarch: ready list out of age order at %d", i)
		}
	}
	return nil
}

// ReadyCandidates fills the scheduler's per-cycle candidate list with all
// ready resident uops ordered per policy. The returned slice is reused
// across calls.
//
// The ready list is already in ascending age order, so the oldest-first
// policy is a copy and VISA is a stable partition by ACE tag — both
// reproduce the ordering a (unique-key) sort of the ready set would, with
// no per-cycle scan or sort.
func (q *IQ) ReadyCandidates(sched Scheduler) []*Uop {
	cands := q.candidates[:0]
	switch sched {
	case SchedVISA:
		for _, u := range q.ready {
			if u.ACETag {
				cands = append(cands, u)
			}
		}
		for _, u := range q.ready {
			if !u.ACETag {
				cands = append(cands, u)
			}
		}
	default:
		cands = append(cands, q.ready...)
	}
	q.candidates = cands
	return cands
}

// ForEach visits every resident uop.
func (q *IQ) ForEach(f func(*Uop)) {
	for _, u := range q.slots {
		if u != nil {
			f(u)
		}
	}
}

// At returns the uop in slot i, or nil if the slot is free. Fault-injection
// campaigns use it to strike a uniformly random entry.
func (q *IQ) At(i int) *Uop { return q.slots[i] }
