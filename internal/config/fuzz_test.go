package config

import (
	"encoding/json"
	"testing"
)

// FuzzParse drives Parse with arbitrary byte strings. Three properties must
// hold for every input: Parse never panics, an accepted machine always
// re-validates, and accepted machines survive a marshal→parse round trip
// unchanged (the golden/bench tooling depends on that stability).
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"IQSize": 64}`))
	f.Add([]byte(`{"IQSize": 0}`))
	f.Add([]byte(`{"L1D": {"Name": "l1d", "SizeBytes": 65536, "Assoc": 4, "LineBytes": 64, "HitLatency": 1}}`))
	f.Add([]byte(`{"Branch": {"GshareEntries": 3}}`))
	f.Add([]byte(`{"IQSize": 96} trailing`))
	f.Add([]byte(`{"MemoryLatency": -5}`))
	f.Add([]byte(`{"L2": {"SizeBytes": 4294967296, "Assoc": 1048576, "LineBytes": 1048576}}`))
	f.Add([]byte(`{"IQOrg": "swque"}`))
	f.Add([]byte(`{"IQOrg": "partitioned", "IQSize": 70}`))
	f.Add([]byte(`{"IQOrg": "partitioned", "IQWatermark": 17}`))
	f.Add([]byte(`{"IQOrg": "partitioned", "IQWatermark": 200}`)) // watermark > IQSize
	f.Add([]byte(`{"IQOrg": "ring"}`))                            // unknown organization
	f.Add([]byte(`{"IQWatermark": 5}`))                           // watermark without partitioning
	f.Add([]byte(`{"IQProtection": "ecc"}`))
	f.Add([]byte(`{"IQProtection": "parity", "IQOrg": "swque"}`))
	f.Add([]byte(`{"IQProtection": "tmr"}`)) // unknown protection
	if def, err := json.Marshal(Default()); err == nil {
		f.Add(def)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("Parse accepted an invalid machine: %v", verr)
		}
		// Parse output must already be canonical — the content-addressed
		// cache hashes machines, so two spellings of one machine ("" vs
		// "unified-age") must never both escape Parse.
		if m != m.Canonical() {
			t.Fatalf("Parse returned a non-canonical machine: %+v", m)
		}
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshalling an accepted machine: %v", err)
		}
		m2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parsing marshalled machine: %v\n%s", err, out)
		}
		if m != m2 {
			t.Fatalf("round trip changed the machine:\n got %+v\nwant %+v", m2, m)
		}
	})
}
