package config

import (
	"strings"
	"testing"
)

func TestParseDefaults(t *testing.T) {
	m, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if m != Default() {
		t.Fatal("empty document must yield the default machine")
	}
}

func TestParseOverride(t *testing.T) {
	m, err := Parse([]byte(`{"IQSize": 64, "ROBSize": 128}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.IQSize != 64 || m.ROBSize != 128 {
		t.Fatalf("overrides not applied: IQ=%d ROB=%d", m.IQSize, m.ROBSize)
	}
	if m.LSQSize != Default().LSQSize {
		t.Fatal("untouched fields must keep defaults")
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		`{"IQSize": 0}`,                 // invalid machine
		`{"NoSuchKnob": 1}`,             // unknown field
		`{"IQSize": 96}{"IQSize": 32}`,  // trailing document
		`{"Branch": {"BTBAssoc": 0}}`,   // division hazard
		`{"Branch": {"RASEntries": 0}}`, // modulo hazard
		`not json`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTable2(t *testing.T) {
	m := Default()
	if m.FetchWidth != 8 || m.IssueWidth != 8 || m.CommitWidth != 8 {
		t.Error("width must be 8-wide fetch/issue/commit")
	}
	if m.IQSize != 96 {
		t.Errorf("IQ size %d, want 96", m.IQSize)
	}
	if m.ROBSize != 96 || m.LSQSize != 48 {
		t.Errorf("ROB/LSQ %d/%d, want 96/48", m.ROBSize, m.LSQSize)
	}
	if m.IntALUs != 8 || m.IntMulDivs != 4 || m.LoadStores != 4 || m.FPALUs != 8 || m.FPMulDivs != 4 {
		t.Error("function unit complement does not match Table 2")
	}
	if m.Branch.GshareEntries != 2048 || m.Branch.HistoryBits != 10 ||
		m.Branch.BTBEntries != 2048 || m.Branch.BTBAssoc != 4 || m.Branch.RASEntries != 32 {
		t.Error("branch resources do not match Table 2")
	}
	if m.ITLB.Entries != 128 || m.DTLB.Entries != 256 || m.ITLB.MissPenalty != 200 {
		t.Error("TLBs do not match Table 2")
	}
	if m.L1I.SizeBytes != 32<<10 || m.L1I.Assoc != 2 || m.L1I.LineBytes != 32 {
		t.Error("L1I does not match Table 2")
	}
	if m.L1D.SizeBytes != 64<<10 || m.L1D.Assoc != 4 || m.L1D.LineBytes != 64 {
		t.Error("L1D does not match Table 2")
	}
	if m.L2.SizeBytes != 2<<20 || m.L2.Assoc != 4 || m.L2.LineBytes != 128 || m.L2.HitLatency != 12 {
		t.Error("L2 does not match Table 2")
	}
	if m.MemoryLatency != 200 {
		t.Errorf("memory latency %d, want 200", m.MemoryLatency)
	}
}

func TestCacheSets(t *testing.T) {
	c := CacheConfig{Name: "x", SizeBytes: 64 << 10, Assoc: 4, LineBytes: 64, HitLatency: 1}
	if got := c.Sets(); got != 256 {
		t.Fatalf("sets = %d, want 256", got)
	}
}

func TestCacheValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "zero", SizeBytes: 0, Assoc: 1, LineBytes: 64, HitLatency: 1},
		{Name: "indivisible", SizeBytes: 1000, Assoc: 3, LineBytes: 64, HitLatency: 1},
		{Name: "nonpow2", SizeBytes: 3 * 64 * 4, Assoc: 4, LineBytes: 64, HitLatency: 1},
		{Name: "latency", SizeBytes: 64 << 10, Assoc: 4, LineBytes: 64, HitLatency: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("cache %s validated but should not", c.Name)
		}
	}
}

func TestTLBValidate(t *testing.T) {
	good := TLBConfig{Name: "t", Entries: 128, Assoc: 4, PageBytes: 4096, MissPenalty: 200}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TLBConfig{
		{Name: "geom", Entries: 100, Assoc: 3, PageBytes: 4096},
		{Name: "page", Entries: 128, Assoc: 4, PageBytes: 3000},
		{Name: "sets", Entries: 96, Assoc: 4, PageBytes: 4096},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("tlb %s validated but should not", c.Name)
		}
	}
}

func TestMachineValidateRejects(t *testing.T) {
	mutations := []func(*Machine){
		func(m *Machine) { m.FetchWidth = 0 },
		func(m *Machine) { m.MaxFetchThreads = 0 },
		func(m *Machine) { m.IQSize = 0 },
		func(m *Machine) { m.FetchQueueSize = 2 },
		func(m *Machine) { m.IntALUs = 0 },
		func(m *Machine) { m.Branch.HistoryBits = 0 },
		func(m *Machine) { m.Branch.GshareEntries = 1000 },
		func(m *Machine) { m.MemoryLatency = 0 },
		func(m *Machine) { m.L1D.HitLatency = 0 },
	}
	for i, mut := range mutations {
		m := Default()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d validated but should not", i)
		}
	}
}

func TestMachineString(t *testing.T) {
	s := Default().String()
	for _, want := range []string{
		"8-wide fetch/issue/commit",
		"96",
		"Gshare",
		"32 entries RAS per thread",
		"unified 2M",
		"200 cycles",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("config string missing %q", want)
		}
	}
}

func TestCanonicalIQAxes(t *testing.T) {
	m := Default()
	m.IQOrg, m.IQProtection = "", ""
	c := m.Canonical()
	if c.IQOrg != OrgUnifiedAGE || c.IQProtection != ProtNone {
		t.Fatalf("empty axes must canonicalize to defaults, got %q/%q", c.IQOrg, c.IQProtection)
	}
	if c != c.Canonical() {
		t.Fatal("Canonical must be idempotent")
	}
	if c != Default() {
		t.Fatal("canonicalizing empty axes must reproduce the explicit default machine")
	}

	m = Default()
	m.IQOrg = OrgPartitioned
	if got := m.Canonical().IQWatermark; got != DefaultWatermark {
		t.Fatalf("partitioned watermark default = %d, want %d", got, DefaultWatermark)
	}
	m.IQSize = 12
	if got := m.Canonical().IQWatermark; got != 12 {
		t.Fatalf("watermark must clamp to IQSize, got %d", got)
	}
	m.IQSize, m.IQWatermark = 70, 9
	if got := m.Canonical().IQWatermark; got != 9 {
		t.Fatalf("explicit watermark must survive canonicalization, got %d", got)
	}
}

func TestParseCanonicalizesIQAxes(t *testing.T) {
	m, err := Parse([]byte(`{"IQOrg": "", "IQProtection": ""}`))
	if err != nil {
		t.Fatal(err)
	}
	if m != Default() {
		t.Fatalf("empty spellings must parse to the default machine, got %+v", m)
	}
	p, err := Parse([]byte(`{"IQOrg": "partitioned", "IQSize": 70}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.IQWatermark != DefaultWatermark {
		t.Fatalf("Parse must canonicalize the watermark, got %d", p.IQWatermark)
	}
}

func TestValidateIQAxes(t *testing.T) {
	bad := []func(*Machine){
		func(m *Machine) { m.IQOrg = "ring" },
		func(m *Machine) { m.IQProtection = "tmr" },
		func(m *Machine) { m.IQWatermark = 5 }, // watermark without partitioning
		func(m *Machine) { m.IQOrg = OrgPartitioned; m.IQWatermark = -1 },
		func(m *Machine) { m.IQOrg = OrgPartitioned; m.IQWatermark = m.IQSize + 1 },
	}
	for i, mut := range bad {
		m := Default()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("IQ-axis mutation %d validated but should not", i)
		}
	}
	good := []func(*Machine){
		func(m *Machine) { m.IQOrg = OrgSWQUE },
		func(m *Machine) { m.IQOrg = OrgPartitioned; m.IQWatermark = 17 },
		func(m *Machine) { m.IQOrg = OrgPartitioned }, // pre-canonical zero watermark
		func(m *Machine) { m.IQProtection = ProtECC },
		func(m *Machine) { m.IQOrg, m.IQProtection = "", "" }, // pre-canonical spellings
	}
	for i, mut := range good {
		m := Default()
		mut(&m)
		if err := m.Validate(); err != nil {
			t.Errorf("IQ-axis variant %d rejected: %v", i, err)
		}
	}
}

func TestFUCountOrder(t *testing.T) {
	m := Default()
	c := m.FUCount()
	want := [5]int{8, 4, 4, 8, 4}
	if c != want {
		t.Fatalf("FUCount = %v, want %v", c, want)
	}
}
