// Package config defines the simulated machine configuration.
//
// The default configuration reproduces Table 2 of the paper: an 8-wide SMT
// processor with a 96-entry shared issue queue, per-thread 96-entry reorder
// buffers and 48-entry load/store queues, a gshare branch predictor with
// 10-bit per-thread global history, and a three-level memory hierarchy
// (32KB L1I, 64KB L1D, unified 2MB L2, 200-cycle memory).
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// CacheConfig describes one set-associative cache.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Assoc      int
	LineBytes  int
	HitLatency int // cycles
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.Assoc * c.LineBytes)
}

// Geometry ceilings: generous for any plausible machine, small enough that
// a parsed configuration can never demand absurd allocations or overflow the
// set arithmetic below. Validate enforces them, so construction code may
// assume them.
const (
	maxCacheBytes = 1 << 32
	maxAssoc      = 1 << 12
	maxLineBytes  = 1 << 12
	maxTLBEntries = 1 << 24
	maxQueueSize  = 1 << 20
	maxWidth      = 1 << 10
	maxPredEntry  = 1 << 28
	maxLatency    = 1 << 24
)

// Validate reports an error if the geometry is inconsistent.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case c.SizeBytes > maxCacheBytes || c.Assoc > maxAssoc || c.LineBytes > maxLineBytes:
		return fmt.Errorf("cache %s: geometry %d/%d/%d exceeds supported bounds",
			c.Name, c.SizeBytes, c.Assoc, c.LineBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.Assoc*c.LineBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by assoc*line %d",
			c.Name, c.SizeBytes, c.Assoc*c.LineBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, c.Sets())
	case c.HitLatency < 1 || c.HitLatency > maxLatency:
		return fmt.Errorf("cache %s: hit latency %d out of range", c.Name, c.HitLatency)
	}
	return nil
}

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name        string
	Entries     int
	Assoc       int
	PageBytes   int
	MissPenalty int // cycles
}

// Sets returns the number of sets implied by the geometry.
func (t TLBConfig) Sets() int { return t.Entries / t.Assoc }

// Validate reports an error if the geometry is inconsistent.
func (t TLBConfig) Validate() error {
	switch {
	case t.Entries <= 0 || t.Assoc <= 0 || t.Entries%t.Assoc != 0:
		return fmt.Errorf("tlb %s: bad geometry %d/%d", t.Name, t.Entries, t.Assoc)
	case t.Entries > maxTLBEntries || t.Assoc > maxAssoc:
		return fmt.Errorf("tlb %s: geometry %d/%d exceeds supported bounds", t.Name, t.Entries, t.Assoc)
	case t.Sets()&(t.Sets()-1) != 0:
		return fmt.Errorf("tlb %s: set count %d not a power of two", t.Name, t.Sets())
	case t.PageBytes <= 0 || t.PageBytes > maxCacheBytes || t.PageBytes&(t.PageBytes-1) != 0:
		return fmt.Errorf("tlb %s: page size %d not a power of two", t.Name, t.PageBytes)
	case t.MissPenalty < 0 || t.MissPenalty > maxLatency:
		return fmt.Errorf("tlb %s: miss penalty %d out of range", t.Name, t.MissPenalty)
	}
	return nil
}

// PredictorKind selects the direction predictor.
type PredictorKind uint8

// Direction predictors.
const (
	// PredGshare is Table 2's gshare with per-thread global history.
	PredGshare PredictorKind = iota
	// PredBimodal indexes the counter table by PC only (no history);
	// an ablation baseline.
	PredBimodal
)

func (k PredictorKind) String() string {
	if k == PredBimodal {
		return "bimodal"
	}
	return "gshare"
}

// BranchConfig describes the branch prediction resources.
type BranchConfig struct {
	Kind          PredictorKind
	GshareEntries int // pattern history table entries (2-bit counters)
	HistoryBits   int // global history length, kept per thread
	BTBEntries    int
	BTBAssoc      int
	RASEntries    int // per thread
}

// Issue-queue organization names (the IQOrg axis; implementations live in
// internal/iqorg). The empty string canonicalizes to OrgUnifiedAGE.
const (
	// OrgUnifiedAGE is the paper's baseline: one shared queue, oldest-first
	// (AGE) selection across all threads.
	OrgUnifiedAGE = "unified-age"
	// OrgSWQUE is a mode-switching queue that runs as a circular FIFO in
	// low-occupancy phases and as an AGE queue in capacity-demanding ones.
	OrgSWQUE = "swque"
	// OrgPartitioned is a dynamically partitioned per-thread queue with a
	// dispatch watermark, as reverse-engineered on real SMT silicon.
	OrgPartitioned = "partitioned"
)

// Issue-queue protection mode names (the IQProtection axis; the cost model
// lives in internal/iqorg). The empty string canonicalizes to ProtNone.
const (
	ProtNone        = "none"
	ProtParity      = "parity"
	ProtECC         = "ecc"
	ProtPartialRepl = "partial-replication"
)

// DefaultWatermark is the per-thread dispatch watermark the partitioned
// organization assumes when IQWatermark is zero: 17 entries, the value
// SMTcheck reverse-engineered on a 70-entry POWER-class issue queue. The
// canonical value is clamped to IQSize for small queues.
const DefaultWatermark = 17

// Machine is the full simulated-machine configuration.
type Machine struct {
	// Pipeline widths (fetch = issue = commit, Table 2).
	FetchWidth  int
	IssueWidth  int
	CommitWidth int

	// MaxFetchThreads bounds how many threads supply instructions in a
	// single fetch cycle (ICOUNT.2.8 in the original SMT work).
	MaxFetchThreads int

	// Front-end depth between fetch and rename, and the per-thread
	// fetch-queue capacity.
	FetchQueueSize int
	DecodeLatency  int

	IQSize  int // shared issue queue entries
	ROBSize int // per thread
	LSQSize int // per thread

	// IQOrg selects the issue-queue organization (OrgUnifiedAGE, OrgSWQUE,
	// OrgPartitioned); IQWatermark is the per-thread dispatch cap for the
	// partitioned organization (0 means min(DefaultWatermark, IQSize) and
	// must stay 0 for other organizations); IQProtection selects the
	// soft-error protection mode (ProtNone, ProtParity, ProtECC,
	// ProtPartialRepl). Empty strings canonicalize to the defaults; see
	// Canonical.
	IQOrg        string
	IQWatermark  int
	IQProtection string

	// Function units (Table 2).
	IntALUs    int
	IntMulDivs int
	LoadStores int
	FPALUs     int
	FPMulDivs  int

	Branch BranchConfig

	ITLB TLBConfig
	DTLB TLBConfig

	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	MemoryLatency int // cycles to main memory

	// MispredictPenalty is the minimum front-end refill delay after a
	// branch misprediction is resolved.
	MispredictPenalty int
}

// Default returns the Table 2 machine configuration.
func Default() Machine {
	return Machine{
		FetchWidth:      8,
		IssueWidth:      8,
		CommitWidth:     8,
		MaxFetchThreads: 2,
		FetchQueueSize:  32,
		DecodeLatency:   2,

		IQSize:  96,
		ROBSize: 96,
		LSQSize: 48,

		IQOrg:        OrgUnifiedAGE,
		IQProtection: ProtNone,

		IntALUs:    8,
		IntMulDivs: 4,
		LoadStores: 4,
		FPALUs:     8,
		FPMulDivs:  4,

		Branch: BranchConfig{
			GshareEntries: 2048,
			HistoryBits:   10,
			BTBEntries:    2048,
			BTBAssoc:      4,
			RASEntries:    32,
		},

		ITLB: TLBConfig{Name: "itlb", Entries: 128, Assoc: 4, PageBytes: 4096, MissPenalty: 200},
		DTLB: TLBConfig{Name: "dtlb", Entries: 256, Assoc: 4, PageBytes: 4096, MissPenalty: 200},

		L1I: CacheConfig{Name: "l1i", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLatency: 1},
		L1D: CacheConfig{Name: "l1d", SizeBytes: 64 << 10, Assoc: 4, LineBytes: 64, HitLatency: 1},
		L2:  CacheConfig{Name: "l2", SizeBytes: 2 << 20, Assoc: 4, LineBytes: 128, HitLatency: 12},

		MemoryLatency:     200,
		MispredictPenalty: 3,
	}
}

// FUCount returns the number of units in each function-unit pool, indexed by
// isa.FUClass ordinal (int ALU, int mul/div, load/store, FP ALU, FP mul/div).
func (m Machine) FUCount() [5]int {
	return [5]int{m.IntALUs, m.IntMulDivs, m.LoadStores, m.FPALUs, m.FPMulDivs}
}

// Canonical returns m with the issue-queue axis fields made explicit: an
// empty IQOrg becomes OrgUnifiedAGE, an empty IQProtection becomes ProtNone,
// and a zero IQWatermark on the partitioned organization becomes
// min(DefaultWatermark, IQSize). Canonical is idempotent, and Parse applies
// it, so hashing layers (core.Config.Canonical/Hash) see one representation
// per machine regardless of which spelling the caller used.
func (m Machine) Canonical() Machine {
	if m.IQOrg == "" {
		m.IQOrg = OrgUnifiedAGE
	}
	if m.IQProtection == "" {
		m.IQProtection = ProtNone
	}
	if m.IQOrg == OrgPartitioned && m.IQWatermark == 0 {
		m.IQWatermark = DefaultWatermark
		if m.IQSize > 0 && m.IQWatermark > m.IQSize {
			m.IQWatermark = m.IQSize
		}
	}
	return m
}

// Validate reports an error for inconsistent configurations.
func (m Machine) Validate() error {
	switch {
	case m.FetchWidth <= 0 || m.IssueWidth <= 0 || m.CommitWidth <= 0:
		return fmt.Errorf("config: non-positive pipeline width")
	case m.FetchWidth > maxWidth || m.IssueWidth > maxWidth || m.CommitWidth > maxWidth:
		return fmt.Errorf("config: pipeline width exceeds %d", maxWidth)
	case m.MaxFetchThreads <= 0:
		return fmt.Errorf("config: MaxFetchThreads must be positive")
	case m.IQSize <= 0 || m.ROBSize <= 0 || m.LSQSize <= 0:
		return fmt.Errorf("config: non-positive queue size")
	case m.IQSize > maxQueueSize || m.ROBSize > maxQueueSize || m.LSQSize > maxQueueSize ||
		m.FetchQueueSize > maxQueueSize:
		return fmt.Errorf("config: queue size exceeds %d", maxQueueSize)
	case m.FetchQueueSize < m.FetchWidth:
		return fmt.Errorf("config: fetch queue (%d) smaller than fetch width (%d)",
			m.FetchQueueSize, m.FetchWidth)
	case m.DecodeLatency < 0 || m.DecodeLatency > maxLatency:
		return fmt.Errorf("config: decode latency %d out of range", m.DecodeLatency)
	case m.IntALUs <= 0 || m.LoadStores <= 0:
		return fmt.Errorf("config: need at least one int ALU and one load/store unit")
	case m.IntALUs > maxWidth || m.IntMulDivs > maxWidth || m.LoadStores > maxWidth ||
		m.FPALUs > maxWidth || m.FPMulDivs > maxWidth ||
		m.IntMulDivs < 0 || m.FPALUs < 0 || m.FPMulDivs < 0:
		return fmt.Errorf("config: function-unit pool size out of range")
	case m.Branch.HistoryBits <= 0 || m.Branch.HistoryBits > 20:
		return fmt.Errorf("config: history bits %d out of range", m.Branch.HistoryBits)
	case m.Branch.GshareEntries <= 0 || m.Branch.GshareEntries > maxPredEntry ||
		m.Branch.GshareEntries&(m.Branch.GshareEntries-1) != 0:
		return fmt.Errorf("config: gshare entries %d not a positive power of two", m.Branch.GshareEntries)
	case m.Branch.BTBEntries <= 0 || m.Branch.BTBAssoc <= 0 ||
		m.Branch.BTBEntries > maxPredEntry || m.Branch.BTBAssoc > maxAssoc ||
		m.Branch.BTBEntries%m.Branch.BTBAssoc != 0 ||
		(m.Branch.BTBEntries/m.Branch.BTBAssoc)&(m.Branch.BTBEntries/m.Branch.BTBAssoc-1) != 0:
		return fmt.Errorf("config: BTB geometry %d/%d invalid", m.Branch.BTBEntries, m.Branch.BTBAssoc)
	case m.Branch.RASEntries <= 0 || m.Branch.RASEntries > maxTLBEntries:
		return fmt.Errorf("config: RAS entries %d out of range", m.Branch.RASEntries)
	case m.MemoryLatency <= 0 || m.MemoryLatency > maxLatency:
		return fmt.Errorf("config: memory latency %d out of range", m.MemoryLatency)
	case m.MispredictPenalty < 0 || m.MispredictPenalty > maxLatency:
		return fmt.Errorf("config: mispredict penalty %d out of range", m.MispredictPenalty)
	}
	switch m.IQOrg {
	case "", OrgUnifiedAGE, OrgSWQUE, OrgPartitioned:
	default:
		return fmt.Errorf("config: unknown issue-queue organization %q", m.IQOrg)
	}
	switch m.IQProtection {
	case "", ProtNone, ProtParity, ProtECC, ProtPartialRepl:
	default:
		return fmt.Errorf("config: unknown issue-queue protection %q", m.IQProtection)
	}
	if m.IQOrg == OrgPartitioned {
		if m.IQWatermark < 0 || m.IQWatermark > m.IQSize {
			return fmt.Errorf("config: watermark %d out of range for %d-entry partitioned queue",
				m.IQWatermark, m.IQSize)
		}
	} else if m.IQWatermark != 0 {
		return fmt.Errorf("config: IQWatermark requires the partitioned organization (IQOrg is %q)", m.IQOrg)
	}
	for _, c := range []CacheConfig{m.L1I, m.L1D, m.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	for _, t := range []TLBConfig{m.ITLB, m.DTLB} {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Parse reads a machine configuration from JSON. Parsing starts from the
// Default (Table 2) machine, so a file only has to name the fields it
// overrides; unknown fields and trailing garbage are rejected, and the
// result is validated. This is what `-config file.json` CLI flags consume.
func Parse(data []byte) (Machine, error) {
	m := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Machine{}, fmt.Errorf("config: %w", err)
	}
	// Reject trailing non-whitespace: concatenated documents are almost
	// certainly a mistake.
	if dec.More() {
		return Machine{}, fmt.Errorf("config: trailing data after configuration object")
	}
	m = m.Canonical()
	if err := m.Validate(); err != nil {
		return Machine{}, err
	}
	return m, nil
}

// MarshalJSON emits the configuration in the format Parse accepts.
func (m Machine) MarshalJSON() ([]byte, error) {
	type plain Machine // shed the method set to avoid recursion
	return json.Marshal(plain(m))
}

// String renders the configuration as the rows of Table 2, plus the
// issue-queue organization and protection axes this reproduction adds.
func (m Machine) String() string {
	c := m.Canonical()
	org := c.IQOrg
	if c.IQOrg == OrgPartitioned {
		org = fmt.Sprintf("%s (watermark %d)", c.IQOrg, c.IQWatermark)
	}
	return fmt.Sprintf(`Processor Width     %d-wide fetch/issue/commit
Issue Queue         %d entries, %s, %s protection
ITLB                %d entries, %d-way, %d cycle miss
Branch Predictor    %d entries Gshare, %d-bit global history per thread
BTB                 %d entries, %d-way
Return Address      %d entries RAS per thread
L1 Instruction      %dK, %d-way, %d Byte/line, %d cycle access
ROB Size            %d entries per thread
Load/Store Queue    %d entries per thread
Integer ALU         %d I-ALU, %d I-MUL/DIV, %d Load/Store
FP ALU              %d FP-ALU, %d FP-MUL/DIV/SQRT
DTLB                %d entries, %d-way, %d cycle miss
L1 Data Cache       %dK, %d-way, %d Byte/line, %d cycle access
L2 Cache            unified %dM, %d-way, %d Byte/line, %d cycle access
Memory Access       %d cycles access latency`,
		m.FetchWidth,
		m.IQSize, org, c.IQProtection,
		m.ITLB.Entries, m.ITLB.Assoc, m.ITLB.MissPenalty,
		m.Branch.GshareEntries, m.Branch.HistoryBits,
		m.Branch.BTBEntries, m.Branch.BTBAssoc,
		m.Branch.RASEntries,
		m.L1I.SizeBytes>>10, m.L1I.Assoc, m.L1I.LineBytes, m.L1I.HitLatency,
		m.ROBSize,
		m.LSQSize,
		m.IntALUs, m.IntMulDivs, m.LoadStores,
		m.FPALUs, m.FPMulDivs,
		m.DTLB.Entries, m.DTLB.Assoc, m.DTLB.MissPenalty,
		m.L1D.SizeBytes>>10, m.L1D.Assoc, m.L1D.LineBytes, m.L1D.HitLatency,
		m.L2.SizeBytes>>20, m.L2.Assoc, m.L2.LineBytes, m.L2.HitLatency,
		m.MemoryLatency)
}
