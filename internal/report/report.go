// Package report renders experiment results as aligned ASCII tables and
// simple bar series, matching the rows and series the paper's tables and
// figures present.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; cells beyond the column count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// format with prec decimals, everything else via %v.
func (t *Table) AddRowf(prec int, cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.*f", prec, v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders v in [0,max] as a text bar of the given width.
func Bar(v, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// WriteCSV writes a header and rows as RFC-4180-ish CSV. Cells containing
// commas or quotes are quoted.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
