package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "2")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title + underline + header + separator + 2 rows.
	if len(lines) != 6 {
		t.Fatalf("%d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Fatal("missing title")
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[2], "value")
	if idx < 0 {
		t.Fatal("missing header")
	}
	if lines[4][idx] != '1' || lines[5][idx] != '2' {
		t.Fatalf("misaligned columns:\n%s", s)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf(2, "x", 1.2345, 7)
	s := tb.String()
	for _, want := range []string{"x", "1.23", "7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}

func TestAddRowTruncates(t *testing.T) {
	tb := NewTable("", "only")
	tb.AddRow("a", "b", "c")
	if len(tb.Rows[0]) != 1 {
		t.Fatal("row not truncated to column count")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 1, 10); got != "#####....." {
		t.Fatalf("bar %q", got)
	}
	if got := Bar(2, 1, 4); got != "####" {
		t.Fatalf("overflow bar %q", got)
	}
	if got := Bar(-1, 1, 4); got != "...." {
		t.Fatalf("negative bar %q", got)
	}
	if got := Bar(1, 0, 4); got != "####" {
		t.Fatalf("zero-max bar %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.423); got != "42.3%" {
		t.Fatalf("pct %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", `q"u`}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,\"q\"\"u\"\n"
	if b.String() != want {
		t.Fatalf("csv %q, want %q", b.String(), want)
	}
}
