// Package visasim reproduces "Optimizing Issue Queue Reliability to Soft
// Errors on Simultaneous Multithreaded Architectures" (Fu, Zhang, Li,
// Fortes — ICPP 2008) as a complete, deterministic SMT processor
// simulation stack written against the Go standard library, and grows it
// into a servable simulation system.
//
// # What the paper shows
//
// The shared issue queue (IQ) of an SMT processor is its soft-error
// hot-spot: it concentrates architecturally-correct-execution (ACE) bits
// for long residencies. The paper profiles each static instruction offline
// as ACE/un-ACE, feeds that 1-bit tag to issue priority (VISA), caps IQ
// allocation per control interval (opt1/opt2), and closes the loop with a
// feedback controller holding runtime IQ AVF below a target (DVM).
//
// # Layers
//
// The implementation lives under internal/ in four layers:
//
//   - Substrate — isa, program, trace, workload: a synthetic instruction
//     set, deterministic SPEC2000-like program generation, functional
//     execution into committed-path streams, and Table 3's workload mixes.
//   - Microarchitecture — config, cache, branch, uarch, pipeline: the
//     Table 2 machine; an 8-wide cycle-driven SMT core with five fetch
//     policies, wrong-path execution and squash, and bit-level AVF
//     accounting (avf) validated by statistical fault injection (inject).
//   - Paper mechanisms — ace (offline ACE analysis and per-PC tagging),
//     alloc (opt1/opt2 dispatch controllers), dvm (dynamic vulnerability
//     management), all assembled behind the core facade: one
//     core.Config in, one core.Result out.
//   - Experiment & service layer — harness (parallel sweep runner),
//     experiments (every table and figure), report (ASCII rendering),
//     server (the visasimd HTTP daemon with a job queue, a
//     content-addressed result cache, and expvar metrics), store (a
//     persistent on-disk result store keyed by the same content hashes),
//     and dispatch (a coordinator sharding sweeps across several daemons
//     with retry, failover, hedging, and checkpointed resume).
//   - Analytical twin — twin (a calibrated surrogate model predicting
//     IPC, IQ occupancy and IQ/ROB AVF per design point in under a
//     microsecond, its accuracy pinned by a golden calibration report)
//     and explore (design-space enumeration and seeded sampling, the
//     Pareto frontier over IPC/IQ-AVF/area, and frontier verification
//     back through the simulator via the same runner seam the
//     experiments use).
//
// # Determinism as a load-bearing property
//
// Every (workload, seed, configuration) tuple reproduces bit-identically;
// the harness parallelises only across independent simulations, never
// within one. Golden tests (testdata/golden) pin byte-exact result
// summaries, which is what makes the service's result cache sound: a
// core.Config content hash (core.Config.Hash) fully determines its
// core.Result, so a cached result is indistinguishable from re-running.
//
// # Entry points
//
// Commands: cmd/visasim (one simulation), cmd/avfprof (offline profiling),
// cmd/faultsim (injection campaigns), cmd/tracedump (stream inspection),
// cmd/experiments (regenerate every table/figure plus the explore
// target's screen-then-verify frontier search, optionally through a
// daemon via -server or a cluster via -backends), cmd/visasimd (the
// simulation service, optionally store-backed via -store), and
// cmd/visasimctl (cluster operations: health, metrics, distributed
// sweeps with checkpointed resume, and explore — screen locally, verify
// the frontier across the cluster).
// Runnable examples live under examples/; this root package holds the
// benchmark harness (bench_test.go) plus the golden and determinism tests.
package visasim
