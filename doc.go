// Package visasim reproduces "Optimizing Issue Queue Reliability to Soft
// Errors on Simultaneous Multithreaded Architectures" (Fu, Zhang, Li,
// Fortes — ICPP 2008) as a complete, deterministic SMT processor
// simulation stack written against the Go standard library.
//
// The root package holds the benchmark harness (bench_test.go): one
// benchmark per table/figure of the paper plus simulator micro-benchmarks.
// The implementation lives under internal/ (see README.md for the map) and
// is exercised through three commands (cmd/visasim, cmd/avfprof,
// cmd/experiments) and four runnable examples (examples/).
package visasim
