package visasim

import (
	"bytes"
	"encoding/json"
	"testing"

	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/pipeline"
)

// skipParityCells spans the controller-less configurations where dead-cycle
// skip-ahead is live, across the stall patterns that matter: CPU-bound and
// memory-bound mixes, miss-gating fetch policies (STALL parks threads on L2
// misses, FLUSH squashes them — the longest dead spans), thread counts from
// 1 to 4, both schedulers, and both issue-queue organizations with per-cycle
// policy state (SWQUE's windowed mode machine) and without. Invariant
// checking stays on for a subset so the sampled cross-checks run on both
// sides of the comparison.
func skipParityCells() []core.Config {
	cpuA := []string{"bzip2", "eon", "gcc", "perlbmk"}
	memA := []string{"mcf", "equake", "vpr", "swim"}
	mix := []string{"mcf", "gcc", "swim", "eon"}
	const budget = 10_000
	swque := config.Default()
	swque.IQOrg = config.OrgSWQUE
	part := config.Default()
	part.IQOrg = config.OrgPartitioned
	ecc := config.Default()
	ecc.IQProtection = config.ProtECC
	cells := []core.Config{
		{Benchmarks: cpuA, Scheme: core.SchemeBase, Policy: pipeline.PolicyICOUNT, MaxInstructions: budget},
		{Benchmarks: memA, Scheme: core.SchemeBase, Policy: pipeline.PolicySTALL, MaxInstructions: budget, InvariantEvery: 2048},
		{Benchmarks: memA, Scheme: core.SchemeBase, Policy: pipeline.PolicyFLUSH, MaxInstructions: budget},
		{Benchmarks: memA, Scheme: core.SchemeVISA, Policy: pipeline.PolicyFLUSH, MaxInstructions: budget, InvariantEvery: 1024},
		{Benchmarks: mix, Scheme: core.SchemeVISA, Policy: pipeline.PolicySTALL, MaxInstructions: budget},
		{Benchmarks: []string{"mcf"}, Scheme: core.SchemeBase, Policy: pipeline.PolicySTALL, MaxInstructions: budget},
		{Benchmarks: mix[:2], Scheme: core.SchemeBase, Policy: pipeline.PolicyPDG, MaxInstructions: budget},
		{Benchmarks: memA, Scheme: core.SchemeBase, Policy: pipeline.PolicySTALL, MaxInstructions: budget, Machine: &swque, InvariantEvery: 4096},
		{Benchmarks: memA, Scheme: core.SchemeVISA, Policy: pipeline.PolicyFLUSH, MaxInstructions: budget, Machine: &part},
		{Benchmarks: memA, Scheme: core.SchemeBase, Policy: pipeline.PolicySTALL, MaxInstructions: budget, Machine: &ecc},
	}
	return cells
}

// TestSkipAheadParityMatrix is the tentpole's correctness pin: for every
// skip-eligible configuration, a skipping run and a cycle-by-cycle run must
// agree on everything — the full Results (AVF accumulator sums, intervals,
// ready-queue histogram, telemetry high-water marks) and the encoded
// decision trace, byte for byte. Only the SkippedCycles throughput counter
// may differ, and on the stalling memory-bound cells it must actually be
// non-zero or the optimization silently died.
func TestSkipAheadParityMatrix(t *testing.T) {
	sawSkips := false
	for i, cfg := range skipParityCells() {
		fast, fastTr, err := core.RunTraced(cfg, core.RunOptions{TraceLevel: 2})
		if err != nil {
			t.Fatalf("cell %d (skip on): %v", i, err)
		}
		slow, slowTr, err := core.RunTraced(cfg, core.RunOptions{TraceLevel: 2, DisableSkipAhead: true})
		if err != nil {
			t.Fatalf("cell %d (skip off): %v", i, err)
		}
		if slow.SkippedCycles != 0 {
			t.Errorf("cell %d: DisableSkipAhead run still skipped %d cycles", i, slow.SkippedCycles)
		}
		if fast.SkippedCycles > 0 {
			sawSkips = true
		}

		// SkippedCycles is the one legitimately differing field; null it
		// before the byte comparison.
		fast.SkippedCycles, slow.SkippedCycles = 0, 0
		a, err := json.Marshal(fast)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(slow)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("cell %d (%v/%v on %v): results differ between skip-ahead and cycle-by-cycle\nskip: %s\nstep: %s",
				i, cfg.Scheme, cfg.Policy, cfg.Benchmarks, a, b)
		}

		var fastBuf, slowBuf bytes.Buffer
		if err := fastTr.Encode(&fastBuf); err != nil {
			t.Fatal(err)
		}
		if err := slowTr.Encode(&slowBuf); err != nil {
			t.Fatal(err)
		}
		if fastBuf.String() != slowBuf.String() {
			t.Errorf("cell %d: decision trace differs between skip-ahead and cycle-by-cycle", i)
		}
	}
	if !sawSkips {
		t.Error("no cell skipped any cycles; skip-ahead never engaged")
	}
}

// TestSkipAheadIneligibleWithController pins the eligibility rule: a
// controller observes every cycle, so controller-bearing runs must never
// skip even when cycles are dead.
func TestSkipAheadIneligibleWithController(t *testing.T) {
	res, err := core.Run(core.Config{
		Benchmarks:      []string{"mcf", "equake", "vpr", "swim"},
		Scheme:          core.SchemeVISAOpt2,
		Policy:          pipeline.PolicyFLUSH,
		MaxInstructions: 8_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedCycles != 0 {
		t.Errorf("controller-bearing run skipped %d cycles", res.SkippedCycles)
	}
}
